#ifndef CROWDJOIN_GRAPH_CLUSTER_GRAPH_H_
#define CROWDJOIN_GRAPH_CLUSTER_GRAPH_H_

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "graph/label.h"
#include "graph/union_find.h"

namespace crowdjoin {

/// What happened when a labeled pair was inserted into the ClusterGraph.
enum class AddOutcome : uint8_t {
  kApplied = 0,    ///< the label added new information to the graph
  kRedundant = 1,  ///< the label was already deducible (no-op)
  kConflict = 2,   ///< the label contradicts the graph (policy applied)
};

/// How contradictory labels are handled (only relevant when crowd answers
/// can be wrong; the paper's simulations assume correct answers).
enum class ConflictPolicy : uint8_t {
  /// Keep the deduction implied by earlier labels; drop the new label.
  /// This matches the paper's labeling framework, which never crowdsources
  /// a deducible pair and therefore always trusts what is already known.
  kKeepFirst = 0,
  /// For a matching label contradicting a non-matching cluster edge, drop
  /// the edge and merge anyway. (A non-matching label inside one cluster is
  /// still rejected: union-find merges cannot be undone.)
  kTrustNew = 1,
};

/// \brief The ClusterGraph of Section 3.2 (Figures 5–6): union-find clusters
/// of matching objects plus non-matching edges between clusters.
///
/// Supports the two operations the labeling framework needs, both in
/// near-constant amortized time:
///  * `Deduce(a, b)` — decide whether the pair's label follows from the
///    labeled pairs via transitive relations (Algorithm 1, DeduceLabel);
///  * `Add(a, b, label)` — insert a newly labeled pair.
///
/// Non-matching edges are stored per cluster root as hash sets of adjacent
/// roots; when two clusters merge, the smaller edge set is folded into the
/// larger one and reverse pointers are fixed up (small-to-large), so the
/// total edge-merging work over a run is O(E log E).
class ClusterGraph {
 public:
  /// Creates a graph over objects `[0, num_objects)` with no labeled pairs.
  explicit ClusterGraph(int32_t num_objects = 0,
                        ConflictPolicy policy = ConflictPolicy::kKeepFirst);

  /// Clears all labels and re-creates `num_objects` singleton clusters.
  void Reset(int32_t num_objects);

  /// Grows the object space to `num_objects`, keeping every labeled pair:
  /// new objects arrive as singleton clusters with no edges. No-op when the
  /// graph already spans that many objects (streaming rounds call this as
  /// each round widens the id range).
  void EnsureObjects(int32_t num_objects) { union_find_.Grow(num_objects); }

  /// Decides the pair's label from the labeled pairs (Algorithm 1):
  ///  * same cluster                        -> kMatching
  ///  * different clusters w/ an edge       -> kNonMatching
  ///  * different clusters w/o an edge      -> kUndeduced
  Deduction Deduce(ObjectId a, ObjectId b);

  /// Inserts a labeled pair. Matching labels merge clusters; non-matching
  /// labels add a cluster edge. Returns what happened; conflicts are
  /// counted and resolved per the configured policy.
  AddOutcome Add(ObjectId a, ObjectId b, Label label);

  /// Number of objects the graph was created over.
  int32_t num_objects() const { return union_find_.size(); }

  /// Current number of clusters (including singletons).
  int32_t num_clusters() const { return union_find_.num_sets(); }

  /// Current number of distinct non-matching cluster edges.
  int64_t num_edges() const { return num_edges_; }

  /// Number of conflicting labels seen so far (both kinds).
  int64_t num_conflicts() const {
    return conflicts_matching_ + conflicts_non_matching_;
  }
  /// Conflicts where a matching label hit an existing non-matching edge.
  int64_t conflicts_matching() const { return conflicts_matching_; }
  /// Conflicts where a non-matching label landed inside one cluster.
  int64_t conflicts_non_matching() const { return conflicts_non_matching_; }

  /// Number of cluster merges performed.
  int64_t num_merges() const { return num_merges_; }

  /// The cluster representative of `x` (stable only until the next merge).
  ObjectId ClusterOf(ObjectId x) { return union_find_.Find(x); }

  /// Number of objects in `x`'s cluster.
  int32_t ClusterSize(ObjectId x) { return union_find_.SetSize(x); }

 private:
  // Edge set of a root (creates it empty on first access).
  std::unordered_set<int32_t>& EdgesOf(int32_t root);
  // Merges the clusters rooted at ra and rb; returns the surviving root.
  int32_t MergeClusters(int32_t ra, int32_t rb);

  UnionFind union_find_;
  ConflictPolicy policy_;
  // Non-matching adjacency, keyed by cluster root. Only roots that have at
  // least one incident edge appear. Sets store adjacent roots.
  std::unordered_map<int32_t, std::unordered_set<int32_t>> edges_;
  int64_t num_edges_ = 0;
  int64_t num_merges_ = 0;
  int64_t conflicts_matching_ = 0;
  int64_t conflicts_non_matching_ = 0;
};

}  // namespace crowdjoin

#endif  // CROWDJOIN_GRAPH_CLUSTER_GRAPH_H_
