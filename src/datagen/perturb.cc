#include "datagen/perturb.h"

#include "common/string_util.h"

namespace crowdjoin {

namespace {
constexpr char kAlphabet[] = "abcdefghijklmnopqrstuvwxyz";
}  // namespace

std::string Corruptor::Typo(const std::string& word) {
  if (word.size() < 2) return word;
  std::string out = word;
  const size_t pos = rng_->Index(out.size());
  switch (rng_->UniformUint64(4)) {
    case 0:  // substitute
      out[pos] = kAlphabet[rng_->Index(26)];
      break;
    case 1:  // delete
      out.erase(pos, 1);
      break;
    case 2:  // insert
      out.insert(pos, 1, kAlphabet[rng_->Index(26)]);
      break;
    case 3:  // transpose with next char
      if (pos + 1 < out.size()) std::swap(out[pos], out[pos + 1]);
      break;
  }
  return out;
}

std::string Corruptor::CorruptText(const std::string& text) {
  std::vector<std::string> words = SplitWhitespace(text);
  std::vector<std::string> out;
  out.reserve(words.size() + 1);
  for (size_t i = 0; i < words.size(); ++i) {
    std::string word = words[i];
    if (rng_->Bernoulli(config_.drop_word) && words.size() > 1) continue;
    if (rng_->Bernoulli(config_.typo_per_word)) word = Typo(word);
    if (rng_->Bernoulli(config_.truncate_word) && word.size() > 4) {
      word = word.substr(0, 3 + rng_->Index(word.size() - 3));
    }
    out.push_back(word);
    if (rng_->Bernoulli(config_.duplicate_word)) out.push_back(word);
  }
  for (size_t i = 0; i + 1 < out.size(); ++i) {
    if (rng_->Bernoulli(config_.swap_adjacent)) std::swap(out[i], out[i + 1]);
  }
  if (out.empty() && !words.empty()) out.push_back(words[0]);
  return Join(out, " ");
}

std::string Corruptor::InitialForm(const std::string& full_name) {
  const std::vector<std::string> parts = SplitWhitespace(full_name);
  if (parts.size() < 2) return full_name;
  std::string out;
  out += parts[0][0];
  for (size_t i = 1; i < parts.size(); ++i) {
    out += ' ';
    out += parts[i];
  }
  return out;
}

double Corruptor::JitterNumber(double value, double jitter) {
  return value * rng_->UniformDouble(1.0 - jitter, 1.0 + jitter);
}

}  // namespace crowdjoin
