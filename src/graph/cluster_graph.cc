#include "graph/cluster_graph.h"

#include <algorithm>
#include <numeric>
#include <utility>

#include "common/macros.h"

namespace crowdjoin {

// ---------------------------------------------------------------------------
// Construction / copying
// ---------------------------------------------------------------------------

ClusterGraph::ClusterGraph(int32_t num_objects, ConflictPolicy policy)
    : policy_(policy) {
  Reset(num_objects);
}

void ClusterGraph::CopyStateFrom(const ClusterGraph& other) {
  union_find_ = other.union_find_;
  policy_ = other.policy_;
  edges_ = other.edges_;
  num_edges_ = other.num_edges_;
  num_merges_ = other.num_merges_;
  conflicts_matching_ = other.conflicts_matching_;
  conflicts_non_matching_ = other.conflicts_non_matching_;
  link_parent_ = other.link_parent_;
  link_epoch_ = other.link_epoch_;
  min_history_ = other.min_history_;
  edge_log_enabled_ = other.edge_log_enabled_;
  edge_log_ = other.edge_log_;
  published_epoch_ = other.published_epoch_;
  dirty_ = other.dirty_;
}

ClusterGraph::ClusterGraph(const ClusterGraph& other) : policy_(other.policy_) {
  std::shared_lock<std::shared_mutex> lock(other.mu_);
  CopyStateFrom(other);
}

ClusterGraph& ClusterGraph::operator=(const ClusterGraph& other) {
  if (this == &other) return *this;
  std::shared_lock<std::shared_mutex> other_lock(other.mu_);
  auto lock = MutationLock();
  CopyStateFrom(other);
  return *this;
}

ClusterGraph::ClusterGraph(ClusterGraph&& other) noexcept
    : union_find_(std::move(other.union_find_)),
      policy_(other.policy_),
      edges_(std::move(other.edges_)),
      num_edges_(other.num_edges_),
      num_merges_(other.num_merges_),
      conflicts_matching_(other.conflicts_matching_),
      conflicts_non_matching_(other.conflicts_non_matching_),
      link_parent_(std::move(other.link_parent_)),
      link_epoch_(std::move(other.link_epoch_)),
      min_history_(std::move(other.min_history_)),
      edge_log_enabled_(other.edge_log_enabled_),
      edge_log_(std::move(other.edge_log_)),
      published_epoch_(other.published_epoch_),
      dirty_(other.dirty_) {}

ClusterGraph& ClusterGraph::operator=(ClusterGraph&& other) noexcept {
  if (this == &other) return *this;
  union_find_ = std::move(other.union_find_);
  policy_ = other.policy_;
  edges_ = std::move(other.edges_);
  num_edges_ = other.num_edges_;
  num_merges_ = other.num_merges_;
  conflicts_matching_ = other.conflicts_matching_;
  conflicts_non_matching_ = other.conflicts_non_matching_;
  link_parent_ = std::move(other.link_parent_);
  link_epoch_ = std::move(other.link_epoch_);
  min_history_ = std::move(other.min_history_);
  edge_log_enabled_ = other.edge_log_enabled_;
  edge_log_ = std::move(other.edge_log_);
  published_epoch_ = other.published_epoch_;
  dirty_ = other.dirty_;
  snapshots_enabled_ = false;
  return *this;
}

void ClusterGraph::Reset(int32_t num_objects) {
  auto lock = MutationLock();
  union_find_.Reset(num_objects);
  edges_.clear();
  num_edges_ = 0;
  num_merges_ = 0;
  conflicts_matching_ = 0;
  conflicts_non_matching_ = 0;
  link_parent_.resize(static_cast<size_t>(num_objects));
  std::iota(link_parent_.begin(), link_parent_.end(), 0);
  link_epoch_.assign(static_cast<size_t>(num_objects), kNoEpoch);
  min_history_.clear();
  edge_log_.clear();
  published_epoch_ = 0;
  dirty_ = false;
}

void ClusterGraph::EnsureObjects(int32_t num_objects) {
  if (num_objects <= union_find_.size()) return;
  auto lock = MutationLock();
  const int32_t old_size = union_find_.size();
  union_find_.Grow(num_objects);
  link_parent_.resize(static_cast<size_t>(num_objects));
  std::iota(link_parent_.begin() + old_size, link_parent_.end(), old_size);
  link_epoch_.resize(static_cast<size_t>(num_objects), kNoEpoch);
  dirty_ = true;
}

// ---------------------------------------------------------------------------
// Live reads
// ---------------------------------------------------------------------------

Deduction ClusterGraph::DeduceRoots(int32_t ra, int32_t rb) const {
  if (ra == rb) return Deduction::kMatching;
  auto it = edges_.find(ra);
  if (it != edges_.end()) {
    auto span = it->second.spans.find(rb);
    if (span != it->second.spans.end() && span->second.death == kNoEpoch) {
      return Deduction::kNonMatching;
    }
  }
  return Deduction::kUndeduced;
}

Deduction ClusterGraph::Deduce(ObjectId a, ObjectId b) {
  return DeduceRoots(union_find_.Find(a), union_find_.Find(b));
}

Deduction ClusterGraph::Deduce(ObjectId a, ObjectId b) const {
  const UnionFind& uf = union_find_;
  return DeduceRoots(uf.Find(a), uf.Find(b));
}

// ---------------------------------------------------------------------------
// Mutations
// ---------------------------------------------------------------------------

bool ClusterGraph::AddSpan(int32_t ra, int32_t rb, int64_t epoch) {
  {
    RootEdges& ea = edges_[ra];
    auto [it, inserted] = ea.spans.try_emplace(rb, EdgeSpan{epoch, kNoEpoch});
    if (!inserted) {
      // A dead ra<->rb entry cannot coexist with ra and rb both being live
      // roots (a killed span always loses an endpoint to the merge that
      // follows), so an existing entry here is a live parallel edge.
      CJ_CHECK(it->second.death == kNoEpoch);
      return false;
    }
    ++ea.live_degree;
  }
  // Note: edges_[rb] may rehash the outer map; ea is not used past here.
  RootEdges& eb = edges_[rb];
  auto [it, inserted] = eb.spans.try_emplace(ra, EdgeSpan{epoch, kNoEpoch});
  CJ_CHECK(inserted);
  ++eb.live_degree;
  return true;
}

void ClusterGraph::KillSpan(int32_t ra, int32_t rb, int64_t epoch) {
  auto ita = edges_.find(ra);
  CJ_CHECK(ita != edges_.end());
  auto sa = ita->second.spans.find(rb);
  CJ_CHECK(sa != ita->second.spans.end() && sa->second.death == kNoEpoch);
  sa->second.death = epoch;
  --ita->second.live_degree;
  auto itb = edges_.find(rb);
  CJ_CHECK(itb != edges_.end());
  auto sb = itb->second.spans.find(ra);
  CJ_CHECK(sb != itb->second.spans.end() && sb->second.death == kNoEpoch);
  sb->second.death = epoch;
  --itb->second.live_degree;
}

int32_t ClusterGraph::MergeClusters(int32_t ra, int32_t rb) {
  // Keep the root with the larger live edge set so the smaller set is
  // folded in (small-to-large); ties broken by cluster size via plain
  // Union semantics.
  auto it_a = edges_.find(ra);
  auto it_b = edges_.find(rb);
  const int32_t deg_a = it_a == edges_.end() ? 0 : it_a->second.live_degree;
  const int32_t deg_b = it_b == edges_.end() ? 0 : it_b->second.live_degree;
  int32_t winner = ra;
  int32_t loser = rb;
  if (deg_b > deg_a ||
      (deg_b == deg_a &&
       union_find_.SetSize(rb) > union_find_.SetSize(ra))) {
    winner = rb;
    loser = ra;
  }
  const int64_t epoch = published_epoch_ + 1;
  // Journal the canonical-id decrease and the link before the live
  // structures forget the pre-merge state.
  const int32_t min_w = union_find_.MinMember(winner);
  const int32_t min_l = union_find_.MinMember(loser);
  if (min_l < min_w) min_history_[winner].emplace_back(epoch, min_l);
  union_find_.UnionInto(winner, loser);
  link_parent_[static_cast<size_t>(loser)] = winner;
  link_epoch_[static_cast<size_t>(loser)] = epoch;
  ++num_merges_;

  // Fold: every live loser<->neighbor edge dies at `epoch` and is reborn
  // as winner<->neighbor; the same neighbor may be adjacent to both, and
  // the two parallel edges collapse into one. (The caller guarantees no
  // live edge between winner and loser.) Dead spans stay behind under the
  // loser's key — that is the history snapshots read.
  std::vector<int32_t> live_neighbors;
  if (auto it = edges_.find(loser);
      it != edges_.end() && it->second.live_degree > 0) {
    live_neighbors.reserve(static_cast<size_t>(it->second.live_degree));
    for (const auto& [nbr, span] : it->second.spans) {
      if (span.death == kNoEpoch) live_neighbors.push_back(nbr);
    }
  }
  for (int32_t nbr : live_neighbors) {
    KillSpan(loser, nbr, epoch);
    if (!AddSpan(winner, nbr, epoch)) --num_edges_;  // collapsed parallel
  }
  return winner;
}

AddOutcome ClusterGraph::Add(ObjectId a, ObjectId b, Label label) {
  CJ_CHECK(a != b);
  auto lock = MutationLock();
  // Every call is logged, whatever its outcome: replaying the log must
  // reproduce the conflict/redundancy counters, not just the clusters.
  if (edge_log_enabled_) edge_log_.push_back(LoggedEdge{a, b, label});
  const int64_t epoch = published_epoch_ + 1;
  const int32_t ra = union_find_.Find(a);
  const int32_t rb = union_find_.Find(b);

  if (label == Label::kMatching) {
    if (ra == rb) return AddOutcome::kRedundant;
    if (DeduceRoots(ra, rb) == Deduction::kNonMatching) {
      ++conflicts_matching_;
      dirty_ = true;
      if (policy_ == ConflictPolicy::kKeepFirst) return AddOutcome::kConflict;
      // kTrustNew: drop the contradicting edge, then merge.
      KillSpan(ra, rb, epoch);
      --num_edges_;
      MergeClusters(ra, rb);
      return AddOutcome::kConflict;
    }
    dirty_ = true;
    MergeClusters(ra, rb);
    return AddOutcome::kApplied;
  }

  // Non-matching label.
  if (ra == rb) {
    // Contradiction: the two objects are already deduced matching. A merge
    // cannot be undone, so both policies keep the cluster.
    ++conflicts_non_matching_;
    dirty_ = true;
    return AddOutcome::kConflict;
  }
  if (!AddSpan(ra, rb, epoch)) return AddOutcome::kRedundant;
  ++num_edges_;
  dirty_ = true;
  return AddOutcome::kApplied;
}

// ---------------------------------------------------------------------------
// Epoch snapshots
// ---------------------------------------------------------------------------

ClusterGraphSnapshot ClusterGraph::Snapshot() {
  // Flip into snapshot mode before publishing so every later mutation
  // locks. Writer-only: no reader can hold a snapshot before this returns.
  snapshots_enabled_ = true;
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (dirty_) {
    ++published_epoch_;
    dirty_ = false;
  }
  return ClusterGraphSnapshot(this, published_epoch_, union_find_.size(),
                              union_find_.num_sets(), num_edges_, num_merges_,
                              conflicts_matching_, conflicts_non_matching_);
}

int32_t ClusterGraph::RootAtEpoch(int32_t x, int64_t epoch) const {
  while (link_epoch_[static_cast<size_t>(x)] <= epoch) {
    x = link_parent_[static_cast<size_t>(x)];
  }
  return x;
}

int32_t ClusterGraph::MinMemberAtEpoch(int32_t x, int64_t epoch) const {
  const int32_t root = RootAtEpoch(x, epoch);
  int32_t min = root;
  if (auto it = min_history_.find(root); it != min_history_.end()) {
    // Entries ascend in epoch and descend in min; the last one with
    // epoch <= E is the smallest member visible at E.
    const auto& hist = it->second;
    auto pos = std::upper_bound(
        hist.begin(), hist.end(), epoch,
        [](int64_t e, const std::pair<int64_t, int32_t>& entry) {
          return e < entry.first;
        });
    if (pos != hist.begin()) min = std::prev(pos)->second;
  }
  return min;
}

Deduction ClusterGraph::DeduceAtEpoch(ObjectId a, ObjectId b,
                                      int64_t epoch) const {
  const int32_t ra = RootAtEpoch(a, epoch);
  const int32_t rb = RootAtEpoch(b, epoch);
  if (ra == rb) return Deduction::kMatching;
  auto it = edges_.find(ra);
  if (it != edges_.end()) {
    auto span = it->second.spans.find(rb);
    if (span != it->second.spans.end() && span->second.birth <= epoch &&
        epoch < span->second.death) {
      return Deduction::kNonMatching;
    }
  }
  return Deduction::kUndeduced;
}

Deduction ClusterGraphSnapshot::Deduce(ObjectId a, ObjectId b) const {
  CJ_CHECK(graph_ != nullptr);
  CJ_CHECK(a >= 0 && a < num_objects_ && b >= 0 && b < num_objects_);
  std::shared_lock<std::shared_mutex> lock(graph_->mu_);
  return graph_->DeduceAtEpoch(a, b, epoch_);
}

ObjectId ClusterGraphSnapshot::ClusterOf(ObjectId x) const {
  CJ_CHECK(graph_ != nullptr);
  CJ_CHECK(x >= 0 && x < num_objects_);
  std::shared_lock<std::shared_mutex> lock(graph_->mu_);
  return graph_->RootAtEpoch(x, epoch_);
}

ObjectId ClusterGraphSnapshot::CanonicalClusterId(ObjectId x) const {
  CJ_CHECK(graph_ != nullptr);
  CJ_CHECK(x >= 0 && x < num_objects_);
  std::shared_lock<std::shared_mutex> lock(graph_->mu_);
  return graph_->MinMemberAtEpoch(x, epoch_);
}

}  // namespace crowdjoin
