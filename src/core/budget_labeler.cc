#include "core/budget_labeler.h"

#include "common/macros.h"
#include "core/sequential_labeler.h"

namespace crowdjoin {

Result<BudgetLabeler::RunResult> BudgetLabeler::Run(
    const CandidateSet& pairs, const std::vector<int32_t>& order,
    int64_t budget, LabelOracle& oracle) const {
  if (budget < 0) {
    return Status::InvalidArgument("budget must be non-negative");
  }
  CJ_RETURN_IF_ERROR(ValidateOrder(order, pairs.size()));

  RunResult result;
  result.outcomes.resize(pairs.size());
  ClusterGraph graph(NumObjectsSpanned(pairs));

  for (int32_t pos : order) {
    const CandidatePair& pair = pairs[static_cast<size_t>(pos)];
    auto& outcome = result.outcomes[static_cast<size_t>(pos)];
    const Deduction deduction = graph.Deduce(pair.a, pair.b);
    if (deduction != Deduction::kUndeduced) {
      outcome = PairOutcome{DeductionToLabel(deduction),
                            LabelSource::kDeduced};
      ++result.num_deduced;
      continue;
    }
    if (result.num_crowdsourced >= budget) {
      ++result.num_unlabeled;  // money ran out; leave undecided
      continue;
    }
    const Label label = oracle.GetLabel(pair.a, pair.b);
    outcome = PairOutcome{label, LabelSource::kCrowdsourced};
    ++result.num_crowdsourced;
    graph.Add(pair.a, pair.b, label);
  }
  return result;
}

}  // namespace crowdjoin
