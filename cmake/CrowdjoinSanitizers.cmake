# CROWDJOIN_SANITIZE instruments every target configured in this build
# (libraries, tests, benches, examples). Modes:
#
#   OFF              no instrumentation (default)
#   ON / address     AddressSanitizer + UndefinedBehaviorSanitizer
#   thread           ThreadSanitizer (for the ThreadPool / parallel-labeler
#                    code paths; incompatible with ASan, hence a mode)
#
# Applied globally rather than per-target so no project target can be left
# uninstrumented. Prebuilt system libraries (e.g. a distro libgtest) still
# link uninstrumented; CI's sanitize jobs therefore install no gtest package
# so FetchContent builds it from source under the same flags.
if(CROWDJOIN_SANITIZE)
  if(NOT CMAKE_CXX_COMPILER_ID MATCHES "GNU|Clang")
    message(FATAL_ERROR
      "CROWDJOIN_SANITIZE=${CROWDJOIN_SANITIZE} requires GCC or Clang, got "
      "${CMAKE_CXX_COMPILER_ID}")
  endif()

  string(TOLOWER "${CROWDJOIN_SANITIZE}" _crowdjoin_sanitize_mode)
  if(_crowdjoin_sanitize_mode STREQUAL "thread")
    set(_crowdjoin_sanitize_flags thread)
  elseif(_crowdjoin_sanitize_mode MATCHES "^(on|true|1|yes|address)$")
    set(_crowdjoin_sanitize_flags address,undefined)
  else()
    message(FATAL_ERROR
      "Unknown CROWDJOIN_SANITIZE value '${CROWDJOIN_SANITIZE}'; expected "
      "OFF, ON, address, or thread")
  endif()

  message(STATUS
    "crowdjoin: building with -fsanitize=${_crowdjoin_sanitize_flags}")
  add_compile_options(
    -fsanitize=${_crowdjoin_sanitize_flags}
    -fno-sanitize-recover=all
    -fno-omit-frame-pointer)
  add_link_options(-fsanitize=${_crowdjoin_sanitize_flags})
endif()
