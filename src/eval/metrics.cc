#include "eval/metrics.h"

#include "common/macros.h"

namespace crowdjoin {

QualityMetrics ComputeQuality(const CandidateSet& pairs,
                              const std::vector<Label>& final_labels,
                              const GroundTruthOracle& truth) {
  CJ_CHECK(pairs.size() == final_labels.size());
  QualityMetrics metrics;
  for (size_t i = 0; i < pairs.size(); ++i) {
    const Label real = truth.Truth(pairs[i].a, pairs[i].b);
    const Label predicted = final_labels[i];
    if (predicted == Label::kMatching) {
      if (real == Label::kMatching) {
        ++metrics.true_positives;
      } else {
        ++metrics.false_positives;
      }
    } else {
      if (real == Label::kMatching) {
        ++metrics.false_negatives;
      } else {
        ++metrics.true_negatives;
      }
    }
  }
  const double tp = static_cast<double>(metrics.true_positives);
  const double fp = static_cast<double>(metrics.false_positives);
  const double fn = static_cast<double>(metrics.false_negatives);
  metrics.precision = (tp + fp) > 0.0 ? tp / (tp + fp) : 0.0;
  metrics.recall = (tp + fn) > 0.0 ? tp / (tp + fn) : 0.0;
  metrics.f_measure =
      (metrics.precision + metrics.recall) > 0.0
          ? 2.0 * metrics.precision * metrics.recall /
                (metrics.precision + metrics.recall)
          : 0.0;
  return metrics;
}

std::vector<Label> ExtractFinalLabels(const LabelingReport& report) {
  std::vector<Label> labels;
  labels.reserve(report.outcomes.size());
  for (const std::optional<PairOutcome>& outcome : report.outcomes) {
    labels.push_back(outcome.has_value() ? outcome->label
                                         : Label::kNonMatching);
  }
  return labels;
}

std::vector<Label> ExtractFinalLabels(const LabelingResult& result) {
  std::vector<Label> labels;
  labels.reserve(result.outcomes.size());
  for (const PairOutcome& outcome : result.outcomes) {
    labels.push_back(outcome.label);
  }
  return labels;
}

}  // namespace crowdjoin
