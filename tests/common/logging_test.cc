#include "common/logging.h"

#include <gtest/gtest.h>

namespace crowdjoin {
namespace {

TEST(Logging, LevelRoundTrips) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(original);
}

TEST(Logging, SuppressedLevelsDoNotCrash) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kOff);
  CJ_LOG(Debug) << "invisible " << 1;
  CJ_LOG(Info) << "invisible " << 2.5;
  CJ_LOG(Warning) << "invisible";
  CJ_LOG(Error) << "invisible";
  SetLogLevel(original);
}

TEST(Logging, EmittedLevelsDoNotCrash) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kDebug);
  CJ_LOG(Debug) << "debug line from logging_test";
  CJ_LOG(Error) << "error line from logging_test";
  SetLogLevel(original);
}

}  // namespace
}  // namespace crowdjoin
