#ifndef CROWDJOIN_SIMJOIN_SHARDED_JOIN_H_
#define CROWDJOIN_SIMJOIN_SHARDED_JOIN_H_

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "simjoin/similarity_join.h"
#include "simjoin/similarity_measure.h"
#include "simjoin/token_dictionary.h"

namespace crowdjoin {

class ShardedJoinCursor;

/// Knobs of the sharded parallel join.
struct ShardedJoinOptions {
  /// Number of document shards; <= 0 picks the default (16). More shards
  /// mean finer-grained probe tasks (self-join: S*(S+1)/2 of them) and
  /// smaller per-task working sets; output is identical for every value.
  int num_shards = 0;
  /// Worker threads for the convenience wrappers that own their pool;
  /// <= 0 runs inline. (`Finish` takes an external pool instead.)
  int num_threads = 0;
};

/// \brief Sharded, pool-parallel similarity self-join with streaming
/// ingestion — the scale path of the machine step.
///
/// Documents are `Add`ed one at a time (round-robin across shards, O(1)
/// amortized per document, flat arena storage per shard) as records stream
/// in; `Finish` then builds each shard's rarity-ordered prefix index in
/// parallel on the given `ThreadPool`, fans the shard-vs-shard probe tasks
/// across the pool, and merges the per-task outputs into one
/// (left, right)-sorted result.
///
/// The join runs under any `SimilarityMeasure`; the measure-less overloads
/// are the token-set Jaccard path. Measure documents (`Add(MeasureDoc)`)
/// carry their signature tokens, measure size, and verification payload
/// into the shard arenas.
///
/// Determinism contract: the returned pairs are **byte-identical** to the
/// sequential join (`PrefixFilterSelfJoin` / `MeasureSelfJoin`) over the
/// same documents — same pair set, same scores, same order — for every
/// shard count and thread count, including the inline (0-thread) pool.
/// Each qualifying pair is produced by exactly one task and verified with
/// the same exact kernel the sequential join uses.
///
/// A joiner may be `Finish`ed repeatedly (e.g. at several thresholds); the
/// ingested documents are immutable once added. Not thread-safe for
/// concurrent `Add` calls; `Finish` only reads.
class ShardedSelfJoiner {
 public:
  explicit ShardedSelfJoiner(int num_shards = 0);

  /// Ingests one document (deduplicated token ids, sorted ascending). The
  /// document's global id is its `Add` order, matching the doc indexing of
  /// `PrefixFilterSelfJoin`. Joins over documents added this way must use
  /// the Jaccard measure (size = token count, no payload).
  void Add(const std::vector<int32_t>& doc);

  /// Ingests one measure document (`SimilarityMeasure::MakeDoc`).
  void Add(const MeasureDoc& doc);

  int64_t num_docs() const { return num_docs_; }
  int num_shards() const { return static_cast<int>(shards_.size()); }

  /// Runs the Jaccard join at `threshold` over everything added so far,
  /// fanning work across `pool` (nullptr = inline). `dictionary` must
  /// contain every token id that was added and be fully populated
  /// (frequencies final), exactly as the sequential join requires.
  Result<std::vector<ScoredPair>> Finish(const TokenDictionary& dictionary,
                                         double threshold,
                                         ThreadPool* pool) const;

  /// Measure-generic `Finish`.
  Result<std::vector<ScoredPair>> Finish(const TokenDictionary& dictionary,
                                         const SimilarityMeasure& measure,
                                         double threshold,
                                         ThreadPool* pool) const;

  /// Prepares the Jaccard join (phase 1, fanned across `pool`) and returns
  /// a cursor that drains the shard-vs-shard probe tasks incrementally —
  /// the round-by-round feed of the streaming labeling path. The joiner
  /// and dictionary must outlive the cursor; `Finish` is equivalent to
  /// draining a fresh cursor in one batch.
  Result<ShardedJoinCursor> MakeCursor(const TokenDictionary& dictionary,
                                       double threshold,
                                       ThreadPool* pool) const;

  /// Measure-generic `MakeCursor`.
  Result<ShardedJoinCursor> MakeCursor(const TokenDictionary& dictionary,
                                       const SimilarityMeasure& measure,
                                       double threshold,
                                       ThreadPool* pool) const;

 private:
  friend class ShardedBipartiteJoiner;
  friend class ShardedJoinCursor;

  /// Flat arena of one shard's documents.
  struct Shard {
    std::vector<int32_t> doc_ids;  ///< global ids, ingestion order
    std::vector<int32_t> tokens;   ///< concatenated sorted-unique token ids
    std::vector<int64_t> offsets = {0};  ///< doc d = tokens[offsets[d]..offsets[d+1])
    std::vector<int32_t> sizes;    ///< per-doc measure size
    std::vector<char> payloads;    ///< concatenated verification payloads
    std::vector<int64_t> payload_offsets = {0};

    void Append(int32_t global_id, const std::vector<int32_t>& doc,
                int32_t size, std::string_view payload);
    size_t size() const { return doc_ids.size(); }
    std::string_view payload(size_t d) const {
      return std::string_view(
          payloads.data() + payload_offsets[d],
          static_cast<size_t>(payload_offsets[d + 1] - payload_offsets[d]));
    }
  };

  /// Per-shard rank order + flat prefix postings, built in parallel by
  /// `Finish` from the dictionary-wide rarity permutation (computed once
  /// and shared across shards).
  struct Prepared;

  template <typename Policy>
  static Prepared PrepareT(const Policy& policy, const Shard& shard,
                           const std::vector<int32_t>& ranks,
                           double threshold, bool build_index);
  template <typename Policy>
  static void ProbeTaskT(const Policy& policy, const Shard& target_raw,
                         const Prepared& target, const Shard& probe_raw,
                         const Prepared& probe, bool same_shard,
                         bool bipartite_emit, double threshold,
                         std::vector<ScoredPair>& out);

  std::vector<Shard> shards_;
  int64_t num_docs_ = 0;
};

/// \brief Bipartite (cross-catalog) variant: left and right documents are
/// ingested separately; every left-shard x right-shard pairing becomes one
/// probe task. Output is byte-identical to the sequential bipartite join
/// at every shard and thread count, for every measure.
class ShardedBipartiteJoiner {
 public:
  explicit ShardedBipartiteJoiner(int num_shards = 0);

  /// Ingests one left/right document; its global id within that side is
  /// the ingestion order, matching `PrefixFilterBipartiteJoin` indexing.
  void AddLeft(const std::vector<int32_t>& doc);
  void AddRight(const std::vector<int32_t>& doc);
  void AddLeft(const MeasureDoc& doc);
  void AddRight(const MeasureDoc& doc);

  int64_t num_left() const { return left_.num_docs(); }
  int64_t num_right() const { return right_.num_docs(); }

  Result<std::vector<ScoredPair>> Finish(const TokenDictionary& dictionary,
                                         double threshold,
                                         ThreadPool* pool) const;
  Result<std::vector<ScoredPair>> Finish(const TokenDictionary& dictionary,
                                         const SimilarityMeasure& measure,
                                         double threshold,
                                         ThreadPool* pool) const;

  /// Bipartite counterpart of `ShardedSelfJoiner::MakeCursor`.
  Result<ShardedJoinCursor> MakeCursor(const TokenDictionary& dictionary,
                                       double threshold,
                                       ThreadPool* pool) const;
  Result<ShardedJoinCursor> MakeCursor(const TokenDictionary& dictionary,
                                       const SimilarityMeasure& measure,
                                       double threshold,
                                       ThreadPool* pool) const;

 private:
  friend class ShardedJoinCursor;

  ShardedSelfJoiner left_;
  ShardedSelfJoiner right_;
};

/// \brief Incremental driver over a prepared sharded join: instead of one
/// `Finish` call producing every qualifying pair at once, the probe tasks
/// are drained in caller-sized batches, so the join's output can feed a
/// labeling session round by round without the full result ever being
/// materialized (peak pair memory = one batch).
///
/// Determinism: tasks run in the same fixed order `Finish` uses and each
/// batch is (left, right)-sorted, so the concatenation of all batches is a
/// deterministic partition of exactly the pair set `Finish` returns — for
/// every shard count, thread count, and batch size.
class ShardedJoinCursor {
 public:
  ~ShardedJoinCursor();
  ShardedJoinCursor(ShardedJoinCursor&&) noexcept;
  ShardedJoinCursor& operator=(ShardedJoinCursor&&) noexcept;

  /// Total probe tasks (self-join: S*(S+1)/2; bipartite: S_left*S_right).
  int64_t num_tasks() const;
  /// Tasks already drained.
  int64_t tasks_done() const;
  bool done() const { return tasks_done() >= num_tasks(); }

  /// Runs the next `min(max_tasks, remaining)` probe tasks across `pool`
  /// (nullptr = inline) and returns their merged, sorted output. Empty
  /// once `done()`. `max_tasks` must be >= 1.
  Result<std::vector<ScoredPair>> NextBatch(int64_t max_tasks,
                                            ThreadPool* pool);

 private:
  friend class ShardedSelfJoiner;
  friend class ShardedBipartiteJoiner;

  struct Impl;
  explicit ShardedJoinCursor(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
};

/// Convenience wrapper: sharded Jaccard self-join over an in-memory
/// corpus. Owns a pool of `options.num_threads` workers for the duration
/// of the call.
Result<std::vector<ScoredPair>> ShardedSelfJoin(
    const std::vector<std::vector<int32_t>>& docs,
    const TokenDictionary& dictionary, double threshold,
    const ShardedJoinOptions& options);

/// Convenience wrapper: sharded Jaccard bipartite join over in-memory
/// collections.
Result<std::vector<ScoredPair>> ShardedBipartiteJoin(
    const std::vector<std::vector<int32_t>>& left,
    const std::vector<std::vector<int32_t>>& right,
    const TokenDictionary& dictionary, double threshold,
    const ShardedJoinOptions& options);

/// Convenience wrapper: sharded measure self-join over measure documents.
Result<std::vector<ScoredPair>> ShardedMeasureSelfJoin(
    const std::vector<MeasureDoc>& docs, const TokenDictionary& dictionary,
    const SimilarityMeasure& measure, double threshold,
    const ShardedJoinOptions& options);

/// Convenience wrapper: sharded measure bipartite join.
Result<std::vector<ScoredPair>> ShardedMeasureBipartiteJoin(
    const std::vector<MeasureDoc>& left, const std::vector<MeasureDoc>& right,
    const TokenDictionary& dictionary, const SimilarityMeasure& measure,
    double threshold, const ShardedJoinOptions& options);

}  // namespace crowdjoin

#endif  // CROWDJOIN_SIMJOIN_SHARDED_JOIN_H_
