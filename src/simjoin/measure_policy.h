#ifndef CROWDJOIN_SIMJOIN_MEASURE_POLICY_H_
#define CROWDJOIN_SIMJOIN_MEASURE_POLICY_H_

// Internal: the static measure policies behind the measure-generic join
// cores (similarity_join.cc, sharded_join.cc) and their microbenchmarks.
// Each policy is a stateless-or-tiny struct of inline methods; the join
// cores are templates over the policy type, so the runtime measure choice
// is one switch per join call (`DispatchMeasure`) and the per-posting /
// per-candidate hot paths devirtualize completely — the Jaccard
// instantiation performs exactly the operations the pre-measure joins
// performed, preserving byte-identical output.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string_view>
#include <vector>

#include "simjoin/prefix_filter.h"
#include "simjoin/similarity_measure.h"
#include "text/edit_distance.h"
#include "text/set_similarity.h"

namespace crowdjoin {
namespace internal {

/// One document as the join cores hand it to a policy: rank-encoded
/// signature tokens (ascending), the measure size, and the verification
/// payload (edit distance only).
struct MeasureDocRef {
  const int32_t* ranks = nullptr;
  size_t tok_len = 0;
  size_t size = 0;
  std::string_view payload;
};

/// Token-set Jaccard: the original prefix-filter scheme, unchanged.
/// Signature = word-token set, size = token count, prefix/window/overlap
/// bounds are the classic AllPairs/PPJoin formulas, verification is the
/// early-exit seeded merge.
struct JaccardPolicy {
  /// No fallback bucket: the Jaccard prefix scheme is complete on its own.
  static constexpr bool kUsesFallback = false;

  size_t PrefixLen(double threshold, const int32_t* /*ranks*/,
                   size_t /*tok_len*/, size_t size) const {
    return PrefixLength(threshold, size);
  }
  size_t MinSize(double threshold, size_t size) const {
    return CeilThresholdLength(threshold, size);
  }
  size_t MaxSize(double threshold, size_t size) const {
    return FloorThresholdLength(threshold, size);
  }
  size_t Required(double threshold, size_t probe_tok_len,
                  size_t /*probe_size*/, size_t cand_size) const {
    return RequiredOverlap(threshold, probe_tok_len, cand_size);
  }
  bool Unfilterable(double /*threshold*/, size_t /*tok_len*/,
                    size_t /*size*/) const {
    return false;
  }
  double Verify(const MeasureDocRef& a, const MeasureDocRef& b, size_t a_pos,
                size_t b_pos, double threshold) const {
    return BoundedJaccardSeeded(a.ranks, a.tok_len, b.ranks, b.tok_len,
                                a_pos + 1, b_pos + 1, 1, threshold);
  }
  double Exact(const MeasureDocRef& a, const MeasureDocRef& b) const {
    return JaccardSimilarity(a.ranks, a.tok_len, b.ranks, b.tok_len);
  }
};

/// Normalized edit distance, score = 1 - d / max(|a|, |b|) over normalized
/// strings. Signature = deduplicated character q-grams (pigeonhole: one
/// edit can destroy at most q distinct grams, so a pair within d edits
/// shares all but q*d of either side's grams); size = string length, which
/// both the length window |len_a - len_b| <= d and the banded verifier key
/// on. Documents whose gram set is too small for the pigeonhole prefix to
/// bite (tok_len <= q * max-edits) fall back to a size-windowed bucket —
/// without it, a qualifying pair of such documents may share no gram at
/// all and the filter would not be complete at low thresholds.
struct EditDistancePolicy {
  size_t q = 2;

  static constexpr bool kUsesFallback = true;

  /// Largest edit count any size-window partner of a size-`size` document
  /// can be allowed: d <= (1 - t) * max(sizes), maximized at the window's
  /// upper end. The 1e-6 slack mirrors `RequiredOverlap`, keeping the
  /// filter strictly conservative against the `score + 1e-12 >= t` emit
  /// test.
  size_t MaxEdits(double threshold, size_t size) const {
    return static_cast<size_t>(std::floor(
        (1.0 - threshold) *
            static_cast<double>(FloorThresholdLength(threshold, size)) +
        1e-6));
  }
  /// Edit budget of one concrete pair: floor((1 - t) * max(sizes)).
  static size_t PairEdits(double threshold, size_t size_a, size_t size_b) {
    return static_cast<size_t>(std::floor(
        (1.0 - threshold) * static_cast<double>(std::max(size_a, size_b)) +
        1e-6));
  }
  size_t PrefixLen(double threshold, const int32_t* /*ranks*/, size_t tok_len,
                   size_t size) const {
    if (tok_len == 0) return 0;
    return std::min(tok_len, q * MaxEdits(threshold, size) + 1);
  }
  size_t MinSize(double threshold, size_t size) const {
    return CeilThresholdLength(threshold, size);
  }
  size_t MaxSize(double threshold, size_t size) const {
    return FloorThresholdLength(threshold, size);
  }
  size_t Required(double threshold, size_t probe_tok_len, size_t probe_size,
                  size_t cand_size) const {
    const size_t destroyed = q * PairEdits(threshold, probe_size, cand_size);
    return probe_tok_len > destroyed ? probe_tok_len - destroyed : 0;
  }
  bool Unfilterable(double threshold, size_t tok_len, size_t size) const {
    return tok_len > 0 && tok_len <= q * MaxEdits(threshold, size);
  }
  double Verify(const MeasureDocRef& a, const MeasureDocRef& b,
                size_t /*a_pos*/, size_t /*b_pos*/, double threshold) const {
    const size_t longest = std::max(a.size, b.size);
    const size_t budget = PairEdits(threshold, a.size, b.size);
    const size_t distance = BoundedLevenshtein(a.payload, b.payload, budget);
    if (distance > budget) return -1.0;  // cannot pass the emit test
    return 1.0 - static_cast<double>(distance) / static_cast<double>(longest);
  }
  double Exact(const MeasureDocRef& a, const MeasureDocRef& b) const {
    const size_t longest = std::max(a.size, b.size);
    if (longest == 0) return 1.0;
    const size_t distance = LevenshteinDistance(a.payload, b.payload);
    return 1.0 - static_cast<double>(distance) / static_cast<double>(longest);
  }
};

/// Idf-weighted set cosine over word tokens, rank-encoded like Jaccard.
/// The prefix is the weighted one: the shortest head of the rarity-ordered
/// document whose removal provably drops the best attainable cosine below
/// the threshold (Cauchy–Schwarz on the remaining weight mass). There is
/// no size window or positional bound — weights, not counts, carry the
/// pruning — so MinSize/MaxSize are the open interval and Required is 0.
struct CosineTfIdfPolicy {
  /// Idf weight per token rank (`CosineRankWeights`), owned by the caller
  /// for the duration of the join call.
  const std::vector<double>* weights = nullptr;

  static constexpr bool kUsesFallback = false;

  size_t PrefixLen(double threshold, const int32_t* ranks, size_t tok_len,
                   size_t /*size*/) const {
    if (tok_len == 0) return 0;
    const std::vector<double>& w = *weights;
    double norm2 = 0.0;
    for (size_t i = 0; i < tok_len; ++i) {
      const double wi = w[static_cast<size_t>(ranks[i])];
      norm2 += wi * wi;
    }
    if (!(norm2 > 0.0)) return 0;
    // A pair sharing none of the first p tokens has cosine at most
    // sqrt(1 - head_mass / norm2); cut as soon as that bound falls
    // (conservatively, 1e-9 slack) below the threshold.
    double head = 0.0;
    for (size_t p = 0; p < tok_len; ++p) {
      const double bound = std::sqrt(std::max(0.0, 1.0 - head / norm2));
      if (bound < threshold - 1e-9) return p;
      const double wp = w[static_cast<size_t>(ranks[p])];
      head += wp * wp;
    }
    return tok_len;
  }
  size_t MinSize(double /*threshold*/, size_t /*size*/) const { return 0; }
  size_t MaxSize(double /*threshold*/, size_t /*size*/) const {
    return std::numeric_limits<size_t>::max();
  }
  size_t Required(double /*threshold*/, size_t /*probe_tok_len*/,
                  size_t /*probe_size*/, size_t /*cand_size*/) const {
    return 0;
  }
  bool Unfilterable(double /*threshold*/, size_t /*tok_len*/,
                    size_t /*size*/) const {
    return false;
  }
  /// Exact weighted cosine in one canonical evaluation order: each norm is
  /// accumulated over its own document ascending, the dot product over the
  /// ascending-rank merge — identical doubles on every join path, and
  /// symmetric in (a, b) because the final combine is commutative.
  double Exact(const MeasureDocRef& a, const MeasureDocRef& b) const {
    const std::vector<double>& w = *weights;
    double norm2_a = 0.0;
    for (size_t i = 0; i < a.tok_len; ++i) {
      const double wi = w[static_cast<size_t>(a.ranks[i])];
      norm2_a += wi * wi;
    }
    double norm2_b = 0.0;
    for (size_t j = 0; j < b.tok_len; ++j) {
      const double wj = w[static_cast<size_t>(b.ranks[j])];
      norm2_b += wj * wj;
    }
    if (!(norm2_a > 0.0) || !(norm2_b > 0.0)) return 0.0;  // zero-norm guard
    double dot = 0.0;
    size_t i = 0;
    size_t j = 0;
    while (i < a.tok_len && j < b.tok_len) {
      if (a.ranks[i] < b.ranks[j]) {
        ++i;
      } else if (a.ranks[i] > b.ranks[j]) {
        ++j;
      } else {
        const double shared = w[static_cast<size_t>(a.ranks[i])];
        dot += shared * shared;
        ++i;
        ++j;
      }
    }
    return dot / (std::sqrt(norm2_a) * std::sqrt(norm2_b));
  }
  double Verify(const MeasureDocRef& a, const MeasureDocRef& b,
                size_t /*a_pos*/, size_t /*b_pos*/,
                double /*threshold*/) const {
    return Exact(a, b);
  }
};

/// Runtime -> static dispatch: hands `fn` the concrete policy for
/// `measure`, so every join core instantiates once per measure and inlines
/// the policy calls. `cosine_weights` must outlive the call for the cosine
/// measure (unused otherwise).
template <typename Fn>
auto DispatchMeasure(const SimilarityMeasure& measure,
                     const std::vector<double>* cosine_weights, Fn&& fn) {
  switch (measure.kind()) {
    case MeasureKind::kEditDistance:
      return fn(EditDistancePolicy{static_cast<size_t>(measure.qgram())});
    case MeasureKind::kCosineTfIdf:
      return fn(CosineTfIdfPolicy{cosine_weights});
    case MeasureKind::kJaccard:
      break;
  }
  return fn(JaccardPolicy{});
}

}  // namespace internal
}  // namespace crowdjoin

#endif  // CROWDJOIN_SIMJOIN_MEASURE_POLICY_H_
