// Unit tests for the unified LabelingSession: the policy matrix (schedule ×
// stop × rules × input), the streaming drive, and the report invariants.
// Byte-level equivalence against the five legacy engines lives in
// session_equivalence_test.cc.

#include "core/labeling_session.h"

#include <gtest/gtest.h>

#include <memory>
#include <numeric>

#include "core/labeling_order.h"
#include "tests/core/test_fixtures.h"

namespace crowdjoin {
namespace {

using testing_fixtures::Figure3Pairs;
using testing_fixtures::Figure3Truth;
using testing_fixtures::MakeRandomInstance;
using testing_fixtures::ThreadSafeCountingOracle;

std::vector<int32_t> IdentityOrder(size_t n) {
  std::vector<int32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  return order;
}

LabelingSession MakeSession(SchedulePolicy schedule, int num_threads = 1,
                            StopPolicy stop = StopPolicy::Unbounded()) {
  LabelingSessionOptions options;
  options.schedule = schedule;
  options.num_threads = num_threads;
  options.stop = stop;
  return LabelingSession(options);
}

// --- Policy matrix gating -------------------------------------------------

TEST(LabelingSession, RoundParallelRejectsNonTransitiveChains) {
  const CandidateSet pairs = Figure3Pairs();
  GroundTruthOracle oracle = Figure3Truth();
  LabelingSession session = MakeSession(SchedulePolicy::kRoundParallel);
  session.AddRule(std::make_unique<TransitiveDeductionRule>())
      .AddRule(std::make_unique<OneToOneDeductionRule>());
  EXPECT_EQ(session.Run(pairs, IdentityOrder(pairs.size()), oracle)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(LabelingSession, InstantScheduleRejectsBudget) {
  const CandidateSet pairs = Figure3Pairs();
  GroundTruthOracle oracle = Figure3Truth();
  LabelingSession session =
      MakeSession(SchedulePolicy::kInstantDecision, 1, StopPolicy::Budget(3));
  EXPECT_EQ(session.Run(pairs, IdentityOrder(pairs.size()), oracle)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(LabelingSession, BatchSourceRequiresRoundParallel) {
  const CandidateSet pairs = Figure3Pairs();
  LabelingSession session = MakeSession(SchedulePolicy::kSequential);
  const auto result = session.RunWithBatchSource(
      pairs, IdentityOrder(pairs.size()),
      [](const std::vector<int32_t>& batch) -> Result<std::vector<Label>> {
        return std::vector<Label>(batch.size(), Label::kMatching);
      });
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(LabelingSession, StartRequiresInstantSchedule) {
  const CandidateSet pairs = Figure3Pairs();
  LabelingSession session = MakeSession(SchedulePolicy::kSequential);
  EXPECT_EQ(
      session.Start(&pairs, IdentityOrder(pairs.size())).status().code(),
      StatusCode::kInvalidArgument);
}

TEST(LabelingSession, StreamRejectsInstantSchedule) {
  const CandidateSet pairs = Figure3Pairs();
  MaterializedCandidateStream stream(&pairs);
  GroundTruthOracle oracle = Figure3Truth();
  LabelingSession session = MakeSession(SchedulePolicy::kInstantDecision);
  EXPECT_EQ(session.RunStream(stream, OrderKind::kExpected, oracle)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(LabelingSession, ValidatesOrderAtTheBoundary) {
  const CandidateSet pairs = Figure3Pairs();
  GroundTruthOracle oracle = Figure3Truth();
  for (SchedulePolicy schedule :
       {SchedulePolicy::kSequential, SchedulePolicy::kRoundParallel,
        SchedulePolicy::kInstantDecision}) {
    LabelingSession session = MakeSession(schedule);
    EXPECT_EQ(session.Run(pairs, {0, 0, 1, 2, 3, 4, 5, 6}, oracle)
                  .status()
                  .code(),
              StatusCode::kInvalidArgument)
        << SchedulePolicyToString(schedule);
  }
}

// --- Figure 3 through every schedule --------------------------------------

TEST(LabelingSession, Figure3EverySchedule) {
  const CandidateSet pairs = Figure3Pairs();
  for (SchedulePolicy schedule :
       {SchedulePolicy::kSequential, SchedulePolicy::kRoundParallel,
        SchedulePolicy::kInstantDecision}) {
    GroundTruthOracle oracle = Figure3Truth();
    LabelingSession session = MakeSession(schedule);
    const LabelingReport report =
        session.Run(pairs, IdentityOrder(pairs.size()), oracle).value();
    EXPECT_EQ(report.num_crowdsourced, 6) << SchedulePolicyToString(schedule);
    EXPECT_EQ(report.num_deduced, 2) << SchedulePolicyToString(schedule);
    EXPECT_EQ(report.num_unlabeled, 0) << SchedulePolicyToString(schedule);
    EXPECT_EQ(report.num_candidates, 8);
    EXPECT_EQ(oracle.num_queries(), report.num_crowdsourced);
  }
}

TEST(LabelingSession, ReportEqualAcrossThreadCounts) {
  const auto instance = MakeRandomInstance(91, 40, 8, 160);
  const auto order = IdentityOrder(instance.pairs.size());
  GroundTruthOracle truth(instance.entity_of);
  HashNoisyOracle base(&truth, 0.15, 0.15, 11);
  LabelingSession baseline_session =
      MakeSession(SchedulePolicy::kRoundParallel, 1);
  HashNoisyOracle oracle1 = base;
  const LabelingReport baseline =
      baseline_session.Run(instance.pairs, order, oracle1).value();
  for (int threads : {2, 4, 8}) {
    LabelingSession session =
        MakeSession(SchedulePolicy::kRoundParallel, threads);
    HashNoisyOracle oracle = base;
    const LabelingReport report =
        session.Run(instance.pairs, order, oracle).value();
    EXPECT_TRUE(report == baseline) << "threads=" << threads;
  }
}

TEST(LabelingSession, SessionIsReusableAcrossRuns) {
  const CandidateSet pairs = Figure3Pairs();
  for (SchedulePolicy schedule :
       {SchedulePolicy::kSequential, SchedulePolicy::kRoundParallel,
        SchedulePolicy::kInstantDecision}) {
    LabelingSession session = MakeSession(schedule);
    GroundTruthOracle oracle1 = Figure3Truth();
    const LabelingReport first =
        session.Run(pairs, IdentityOrder(pairs.size()), oracle1).value();
    GroundTruthOracle oracle2 = Figure3Truth();
    const LabelingReport second =
        session.Run(pairs, IdentityOrder(pairs.size()), oracle2).value();
    EXPECT_TRUE(first == second) << SchedulePolicyToString(schedule);
  }
}

// --- Budget stop policy ---------------------------------------------------

TEST(LabelingSession, BudgetCapsBothSchedules) {
  const auto instance = MakeRandomInstance(55, 30, 6, 120);
  const auto order = IdentityOrder(instance.pairs.size());
  for (SchedulePolicy schedule :
       {SchedulePolicy::kSequential, SchedulePolicy::kRoundParallel}) {
    for (int64_t budget : {0, 5, 25}) {
      GroundTruthOracle oracle(instance.entity_of);
      LabelingSession session =
          MakeSession(schedule, 1, StopPolicy::Budget(budget));
      const LabelingReport report =
          session.Run(instance.pairs, order, oracle).value();
      EXPECT_LE(report.num_crowdsourced, budget)
          << SchedulePolicyToString(schedule) << " budget=" << budget;
      EXPECT_EQ(oracle.num_queries(), report.num_crowdsourced);
      EXPECT_EQ(report.num_crowdsourced + report.num_deduced +
                    report.num_unlabeled,
                static_cast<int64_t>(instance.pairs.size()));
      // Unlabeled pairs have empty outcomes, labeled ones engaged.
      int64_t unlabeled = 0;
      for (const auto& outcome : report.outcomes) {
        if (!outcome.has_value()) ++unlabeled;
      }
      EXPECT_EQ(unlabeled, report.num_unlabeled);
    }
  }
}

TEST(LabelingSession, LargeBudgetMatchesUnbounded) {
  const auto instance = MakeRandomInstance(56, 30, 6, 120);
  const auto order = IdentityOrder(instance.pairs.size());
  for (SchedulePolicy schedule :
       {SchedulePolicy::kSequential, SchedulePolicy::kRoundParallel}) {
    GroundTruthOracle oracle1(instance.entity_of);
    LabelingSession unbounded = MakeSession(schedule);
    const LabelingReport base =
        unbounded.Run(instance.pairs, order, oracle1).value();
    GroundTruthOracle oracle2(instance.entity_of);
    LabelingSession capped =
        MakeSession(schedule, 1, StopPolicy::Budget(1 << 20));
    const LabelingReport rich =
        capped.Run(instance.pairs, order, oracle2).value();
    EXPECT_TRUE(base == rich) << SchedulePolicyToString(schedule);
  }
}

// --- Rule chains ----------------------------------------------------------

TEST(LabelingSession, OneToOneRulePluginSavesCrowdsourcing) {
  // Bipartite: left {0,1}, right {2,3}; truth pairs 0-2 and 1-3.
  const CandidateSet pairs = {
      {0, 2, 0.9}, {0, 3, 0.8}, {1, 2, 0.7}, {1, 3, 0.6}};
  GroundTruthOracle oracle({0, 1, 0, 1});
  LabelingSession session;
  session.AddRule(std::make_unique<TransitiveDeductionRule>())
      .AddRule(std::make_unique<OneToOneDeductionRule>());
  const LabelingReport report =
      session.Run(pairs, IdentityOrder(pairs.size()), oracle).value();
  EXPECT_EQ(report.num_crowdsourced, 2);
  EXPECT_EQ(report.num_one_to_one_deduced, 2);
  EXPECT_EQ(report.num_exclusivity_violations, 0);
  EXPECT_EQ(report.outcomes[1]->label, Label::kNonMatching);
  EXPECT_EQ(report.outcomes[1]->source, LabelSource::kDeduced);
  EXPECT_EQ(report.outcomes[3]->label, Label::kMatching);
  EXPECT_EQ(report.outcomes[3]->source, LabelSource::kCrowdsourced);
}

TEST(LabelingSession, OneToOneDeductionsFeedTransitivity) {
  // 0 matches 1; one-to-one rules out (0,2); transitivity must then deduce
  // (1,2) as non-matching without crowdsourcing it — the rule-feedback
  // contract of the chain.
  const CandidateSet pairs = {{0, 1, 0.9}, {0, 2, 0.8}, {1, 2, 0.7}};
  GroundTruthOracle oracle({0, 0, 1});
  LabelingSession session;
  session.AddRule(std::make_unique<TransitiveDeductionRule>())
      .AddRule(std::make_unique<OneToOneDeductionRule>());
  const LabelingReport report =
      session.Run(pairs, IdentityOrder(pairs.size()), oracle).value();
  EXPECT_EQ(report.num_crowdsourced, 1);
  EXPECT_EQ(report.num_one_to_one_deduced, 1);
  EXPECT_EQ(report.num_deduced, 2);
}

// --- Streaming drive ------------------------------------------------------

TEST(LabelingSession, SingleRoundStreamMatchesMaterializedRun) {
  // A one-round stream with the same order kind must be byte-identical to
  // the materialized run (modulo the round counter, identical by
  // construction here).
  const auto instance = MakeRandomInstance(77, 35, 7, 140);
  GroundTruthOracle truth(instance.entity_of);
  for (SchedulePolicy schedule :
       {SchedulePolicy::kSequential, SchedulePolicy::kRoundParallel}) {
    GroundTruthOracle oracle1 = truth;
    LabelingSession direct = MakeSession(schedule);
    const auto order = MakeLabelingOrder(instance.pairs, OrderKind::kExpected,
                                         nullptr, nullptr)
                           .value();
    const LabelingReport materialized =
        direct.Run(instance.pairs, order, oracle1).value();

    GroundTruthOracle oracle2 = truth;
    LabelingSession streamed = MakeSession(schedule);
    MaterializedCandidateStream stream(&instance.pairs);
    const LabelingReport report =
        streamed.RunStream(stream, OrderKind::kExpected, oracle2).value();
    EXPECT_TRUE(report == materialized) << SchedulePolicyToString(schedule);
  }
}

TEST(LabelingSession, ChunkedStreamCarriesDeductionAcrossRounds) {
  const auto instance = MakeRandomInstance(78, 30, 5, 150);
  GroundTruthOracle truth(instance.entity_of);
  for (SchedulePolicy schedule :
       {SchedulePolicy::kSequential, SchedulePolicy::kRoundParallel}) {
    GroundTruthOracle oracle = truth;
    LabelingSession session = MakeSession(schedule);
    MaterializedCandidateStream stream(&instance.pairs, /*round_size=*/20);
    const LabelingReport report =
        session.RunStream(stream, OrderKind::kExpected, oracle).value();
    EXPECT_EQ(report.num_stream_rounds,
              (static_cast<int64_t>(instance.pairs.size()) + 19) / 20);
    EXPECT_EQ(report.num_candidates,
              static_cast<int64_t>(instance.pairs.size()));
    EXPECT_EQ(report.num_unlabeled, 0);
    EXPECT_EQ(report.num_crowdsourced + report.num_deduced,
              report.num_candidates);
    // Transitivity must reach across rounds: a clustered instance needs
    // far fewer crowd answers than pairs.
    EXPECT_GT(report.num_deduced, 0) << SchedulePolicyToString(schedule);
    // With a perfect oracle every label matches ground truth, whatever the
    // round partition.
    for (size_t i = 0; i < instance.pairs.size(); ++i) {
      ASSERT_TRUE(report.outcomes[i].has_value());
      EXPECT_EQ(report.outcomes[i]->label,
                truth.Truth(instance.pairs[i].a, instance.pairs[i].b))
          << SchedulePolicyToString(schedule) << " pair " << i;
    }
  }
}

TEST(LabelingSession, ChunkedStreamThreadCountInvariant) {
  const auto instance = MakeRandomInstance(79, 30, 6, 150);
  GroundTruthOracle truth(instance.entity_of);
  LabelingSession baseline_session =
      MakeSession(SchedulePolicy::kRoundParallel, 1);
  GroundTruthOracle oracle1 = truth;
  MaterializedCandidateStream stream1(&instance.pairs, /*round_size=*/25);
  const LabelingReport baseline =
      baseline_session.RunStream(stream1, OrderKind::kExpected, oracle1)
          .value();
  for (int threads : {2, 4, 8}) {
    LabelingSession session =
        MakeSession(SchedulePolicy::kRoundParallel, threads);
    GroundTruthOracle oracle = truth;
    MaterializedCandidateStream stream(&instance.pairs, /*round_size=*/25);
    const LabelingReport report =
        session.RunStream(stream, OrderKind::kExpected, oracle).value();
    EXPECT_TRUE(report == baseline) << "threads=" << threads;
  }
}

TEST(LabelingSession, StreamingBudgetSpansRounds) {
  const auto instance = MakeRandomInstance(80, 30, 5, 150);
  GroundTruthOracle oracle(instance.entity_of);
  LabelingSession session = MakeSession(SchedulePolicy::kSequential, 1,
                                        StopPolicy::Budget(10));
  MaterializedCandidateStream stream(&instance.pairs, /*round_size=*/20);
  const LabelingReport report =
      session.RunStream(stream, OrderKind::kExpected, oracle).value();
  EXPECT_LE(report.num_crowdsourced, 10);
  EXPECT_EQ(oracle.num_queries(), report.num_crowdsourced);
  EXPECT_EQ(report.num_crowdsourced + report.num_deduced +
                report.num_unlabeled,
            static_cast<int64_t>(instance.pairs.size()));
}

TEST(LabelingSession, EmptyStreamAndEmptyRun) {
  GroundTruthOracle oracle({});
  const CandidateSet empty;
  LabelingSession session = MakeSession(SchedulePolicy::kSequential);
  MaterializedCandidateStream stream(&empty);
  const LabelingReport streamed =
      session.RunStream(stream, OrderKind::kExpected, oracle).value();
  EXPECT_EQ(streamed.num_candidates, 0);
  EXPECT_EQ(streamed.num_stream_rounds, 0);
  const LabelingReport direct = session.Run(empty, {}, oracle).value();
  EXPECT_EQ(direct.num_candidates, 0);
  EXPECT_TRUE(direct.outcomes.empty());
}

// --- Oracle accounting under the chunked stream ---------------------------

TEST(LabelingSession, StreamNeverAsksAPairTwice) {
  const auto instance = MakeRandomInstance(81, 28, 6, 130);
  ThreadSafeCountingOracle oracle(instance.entity_of);
  LabelingSession session = MakeSession(SchedulePolicy::kRoundParallel, 4);
  MaterializedCandidateStream stream(&instance.pairs, /*round_size=*/16);
  const LabelingReport report =
      session.RunStream(stream, OrderKind::kExpected, oracle).value();
  EXPECT_EQ(oracle.total_calls(), report.num_crowdsourced);
  EXPECT_LE(oracle.max_calls_per_pair(), 1);
}

}  // namespace
}  // namespace crowdjoin
