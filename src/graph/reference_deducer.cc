#include "graph/reference_deducer.h"

#include <array>
#include <deque>
#include <utility>

#include "common/macros.h"

namespace crowdjoin {

ReferenceDeducer::ReferenceDeducer(int32_t num_objects)
    : adjacency_(static_cast<size_t>(num_objects)) {}

void ReferenceDeducer::Add(ObjectId a, ObjectId b, Label label) {
  CJ_CHECK(a >= 0 && static_cast<size_t>(a) < adjacency_.size());
  CJ_CHECK(b >= 0 && static_cast<size_t>(b) < adjacency_.size());
  adjacency_[static_cast<size_t>(a)].push_back({b, label});
  adjacency_[static_cast<size_t>(b)].push_back({a, label});
}

Deduction ReferenceDeducer::Deduce(ObjectId a, ObjectId b) const {
  const size_t n = adjacency_.size();
  // visited[v][k]: reached v using k non-matching edges (k in {0,1}).
  std::vector<std::array<bool, 2>> visited(n, {false, false});
  std::deque<std::pair<ObjectId, size_t>> queue;
  visited[static_cast<size_t>(a)][0] = true;
  queue.emplace_back(a, size_t{0});
  bool non_matching_path = false;
  while (!queue.empty()) {
    auto [v, used] = queue.front();
    queue.pop_front();
    if (v == b) {
      if (used == 0) return Deduction::kMatching;
      non_matching_path = true;
      continue;
    }
    for (const Edge& e : adjacency_[static_cast<size_t>(v)]) {
      const size_t next_used =
          used + (e.label == Label::kNonMatching ? 1u : 0u);
      if (next_used > 1) continue;
      if (visited[static_cast<size_t>(e.to)][next_used]) continue;
      visited[static_cast<size_t>(e.to)][next_used] = true;
      // Zero-cost edges go to the front so matching paths are found first.
      if (next_used == used) {
        queue.emplace_front(e.to, next_used);
      } else {
        queue.emplace_back(e.to, next_used);
      }
    }
  }
  return non_matching_path ? Deduction::kNonMatching : Deduction::kUndeduced;
}

}  // namespace crowdjoin
