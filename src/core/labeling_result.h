#ifndef CROWDJOIN_CORE_LABELING_RESULT_H_
#define CROWDJOIN_CORE_LABELING_RESULT_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/label.h"

namespace crowdjoin {

/// How a pair's final label was obtained (Section 2.3's terminology).
enum class LabelSource : uint8_t {
  kCrowdsourced = 0,  ///< asked to (and billed on) the crowd platform
  kDeduced = 1,       ///< inferred for free via transitive relations
};

/// Final label + provenance of one candidate pair.
struct PairOutcome {
  Label label = Label::kNonMatching;
  LabelSource source = LabelSource::kCrowdsourced;

  friend bool operator==(const PairOutcome&, const PairOutcome&) = default;
};

/// \brief Output of a labeling run over a candidate set.
///
/// `outcomes[i]` describes the pair at *position i of the candidate set*
/// (not of the labeling order).
struct LabelingResult {
  std::vector<PairOutcome> outcomes;
  int64_t num_crowdsourced = 0;
  int64_t num_deduced = 0;
  /// Contradictory labels encountered while building the ClusterGraph
  /// (only possible with noisy oracles).
  int64_t num_conflicts = 0;
  /// Pairs crowdsourced per round of the parallel labeler; the sequential
  /// labeler reports one entry per crowdsourced pair (all 1s), matching the
  /// Non-Parallel series of Figures 13–14.
  std::vector<int64_t> crowdsourced_per_iteration;

  /// Field-wise equality — the equivalence the parallel labeler's
  /// thread-count-independence contract (and its tests) is stated in.
  friend bool operator==(const LabelingResult&,
                         const LabelingResult&) = default;
};

/// \brief Unified output of a `LabelingSession` run — the one result type
/// every schedule/stop/deduction policy combination produces. Supersedes
/// `LabelingResult`, `BudgetLabeler::RunResult`, and
/// `OneToOneLabeler::RunResult`, whose fields all embed here; the legacy
/// engines are thin wrappers that re-shape a report into their historical
/// structs.
struct LabelingReport {
  /// Outcome per candidate position; `nullopt` for pairs a budget-capped
  /// run could not reach (always engaged when `num_unlabeled == 0`).
  std::vector<std::optional<PairOutcome>> outcomes;
  /// Candidate pairs consumed (== outcomes.size() unless outcome recording
  /// was disabled for a large streaming run).
  int64_t num_candidates = 0;
  int64_t num_crowdsourced = 0;
  int64_t num_deduced = 0;
  /// Pairs left undecided because the stop policy ran out of budget.
  int64_t num_unlabeled = 0;
  /// Contradictory labels seen by the transitive rule (noisy oracles only).
  int64_t num_conflicts = 0;
  /// Batch sizes, one entry per publication: all 1s under the sequential
  /// schedule, one entry per round under the round-parallel schedule
  /// (matching Figures 13–14), empty under instant decisions.
  std::vector<int64_t> crowdsourced_per_iteration;
  /// Candidate-stream rounds consumed (1 for a materialized run).
  int64_t num_stream_rounds = 0;
  /// Pairs decided by the one-to-one exclusivity rule (also counted in
  /// `num_deduced`); 0 unless the rule is installed.
  int64_t num_one_to_one_deduced = 0;
  /// Crowd answers that matched an already-matched object (one-to-one rule
  /// bookkeeping); 0 unless the rule is installed.
  int64_t num_exclusivity_violations = 0;

  /// Legacy view: the `LabelingResult` shape. Aborts if any pair is
  /// unlabeled (budget-capped runs have no LabelingResult equivalent).
  LabelingResult ToLabelingResult() const;

  friend bool operator==(const LabelingReport&,
                         const LabelingReport&) = default;
};

}  // namespace crowdjoin

#endif  // CROWDJOIN_CORE_LABELING_RESULT_H_
