#include "datagen/streaming_generator.h"

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/string_util.h"
#include "datagen/cluster_distribution.h"
#include "datagen/perturb.h"
#include "datagen/wordlists.h"

namespace crowdjoin {

uint64_t BlockSeed(uint64_t base_seed, int32_t block) {
  if (block == 0) return base_seed;
  uint64_t state =
      base_seed ^ (0x9E3779B97F4A7C15ull * static_cast<uint64_t>(block));
  return SplitMix64(state);
}

namespace {

// ---------------------------------------------------------------------------
// Shared block iterator: the round-robin block state machine both streaming
// sources used to duplicate. Owns the per-block RNG seeding, the
// cluster-size plan, and the (entity, record-in-cluster) walk; the dataset
// Impls only supply the cluster sampler and build entities/records. RNG
// consumption order is exactly the historical one, so 1x streams stay
// byte-identical to the batch generators.
// ---------------------------------------------------------------------------

class BlockCursor {
 public:
  /// Samples one block's cluster-size plan from the block-seeded `rng`.
  using Sampler = std::function<Result<std::vector<int32_t>>(Rng&)>;

  BlockCursor(uint64_t base_seed, int32_t scale_factor, Sampler sampler)
      : base_seed_(base_seed),
        scale_factor_(scale_factor),
        sampler_(std::move(sampler)),
        rng_(base_seed) {
    Restart();
  }

  /// Rewinds to the first record of block 0.
  void Restart() {
    status_ = Status::OK();
    next_id_ = 0;
    entity_id_offset_ = 0;
    if (scale_factor_ < 1) {
      status_ = Status::InvalidArgument("scale_factor must be >= 1");
      block_ = scale_factor_;  // exhausted
      return;
    }
    StartBlock(0);
  }

  /// Positions the cursor on the next record slot, crossing block
  /// boundaries as needed. Returns false at end of stream (or on a
  /// sampling error, carried in `status()`).
  bool NextSlot() {
    while (block_ < scale_factor_ && entity_index_ >= cluster_sizes_.size()) {
      entity_id_offset_ += static_cast<int32_t>(cluster_sizes_.size());
      StartBlock(block_ + 1);
    }
    return block_ < scale_factor_;
  }

  /// Consumes the current slot (call after building its record).
  void Advance() {
    ++next_id_;
    if (++record_in_cluster_ >= cluster_sizes_[entity_index_]) {
      record_in_cluster_ = 0;
      ++entity_index_;
    }
  }

  // Slot accessors, valid after NextSlot() returned true.
  /// True when the slot starts a new cluster (its canonical record).
  bool new_entity() const { return record_in_cluster_ == 0; }
  int32_t record_in_cluster() const { return record_in_cluster_; }
  int32_t cluster_size() const { return cluster_sizes_[entity_index_]; }
  /// Global entity id of the slot's cluster.
  int32_t entity() const {
    return entity_id_offset_ + static_cast<int32_t>(entity_index_);
  }
  /// Global record id of the slot.
  ObjectId next_id() const { return next_id_; }

  const Status& status() const { return status_; }
  /// The block-seeded RNG; entity/record construction draws from it. The
  /// address is stable, so a Corruptor may hold a pointer to it.
  Rng& rng() { return rng_; }

 private:
  // Seeds the RNG for block `b` and samples its cluster-size plan. On
  // sampling failure the stream ends and `status_` carries the error.
  void StartBlock(int32_t b) {
    block_ = b;
    entity_index_ = 0;
    record_in_cluster_ = 0;
    if (block_ >= scale_factor_) return;  // end of stream
    rng_ = Rng(BlockSeed(base_seed_, block_));
    Result<std::vector<int32_t>> sizes = sampler_(rng_);
    if (!sizes.ok()) {
      status_ = sizes.status();
      block_ = scale_factor_;  // exhausted
      return;
    }
    cluster_sizes_ = std::move(sizes).value();
  }

  const uint64_t base_seed_;
  const int32_t scale_factor_;
  const Sampler sampler_;
  Status status_;
  Rng rng_;

  std::vector<int32_t> cluster_sizes_;  // current block's plan
  int32_t block_ = 0;
  size_t entity_index_ = 0;  // within the current block
  int32_t record_in_cluster_ = 0;
  int32_t entity_id_offset_ = 0;  // global id of the block's first entity
  ObjectId next_id_ = 0;
};

// ---------------------------------------------------------------------------
// Paper entity/record construction. This is the single home of the
// generation logic: the batch GeneratePaperDataset drains a 1x stream, so
// the RNG consumption order below defines both paths.
// ---------------------------------------------------------------------------

// Schema field indexes for the Paper dataset.
constexpr int kAuthor = 0;
constexpr int kTitle = 1;
constexpr int kVenue = 2;
constexpr int kDate = 3;
constexpr int kPages = 4;

// A pronounceable rare token (consonant-vowel alternation) used to give
// each publication title a discriminative word, the way real titles carry
// system names and coined terms.
std::string RareToken(Rng& rng) {
  static constexpr char kConsonants[] = "bcdfghjklmnpqrstvwz";
  static constexpr char kVowels[] = "aeiou";
  const size_t length = 5 + rng.Index(4);
  std::string token;
  token.reserve(length);
  for (size_t i = 0; i < length; ++i) {
    if (i % 2 == 0) {
      token += kConsonants[rng.Index(sizeof(kConsonants) - 1)];
    } else {
      token += kVowels[rng.Index(sizeof(kVowels) - 1)];
    }
  }
  return token;
}

struct PaperEntity {
  std::vector<std::string> authors;  // "first last"
  std::string title;
  size_t venue_index = 0;
  int year = 0;
  int first_page = 0;
  int last_page = 0;
};

PaperEntity MakePaperEntity(Rng& rng, const ZipfSampler& title_sampler) {
  const auto& first_names = wordlists::FirstNames();
  const auto& last_names = wordlists::LastNames();
  const auto& title_words = wordlists::TitleWords();

  PaperEntity entity;
  const size_t num_authors = 1 + rng.Index(3);
  for (size_t i = 0; i < num_authors; ++i) {
    std::string name(first_names[rng.Index(first_names.size())]);
    name += ' ';
    name += last_names[rng.Index(last_names.size())];
    entity.authors.push_back(std::move(name));
  }
  const size_t title_length = 5 + rng.Index(5);
  std::vector<std::string> words;
  for (size_t i = 0; i < title_length; ++i) {
    // Zipf-weighted draw: common words recur across entities, which gives
    // non-matching pairs graded, non-zero similarity.
    const size_t w = static_cast<size_t>(title_sampler.Sample(rng)) - 1;
    words.emplace_back(title_words[w]);
  }
  if (rng.Bernoulli(0.8)) {
    words.insert(words.begin() + static_cast<std::ptrdiff_t>(
                                     rng.Index(words.size() + 1)),
                 RareToken(rng));
  }
  entity.title = Join(words, " ");
  entity.venue_index = rng.Index(wordlists::Venues().size());
  entity.year = 1988 + static_cast<int>(rng.Index(17));
  entity.first_page = 1 + static_cast<int>(rng.Index(500));
  entity.last_page = entity.first_page + 8 + static_cast<int>(rng.Index(20));
  return entity;
}

Record MakePaperRecord(const PaperEntity& entity, ObjectId id, bool canonical,
                       const PaperDatasetConfig& config, Corruptor& corruptor,
                       Rng& rng) {
  Record record;
  record.id = id;
  record.fields.resize(5);

  // Author field.
  std::vector<std::string> authors = entity.authors;
  if (!canonical) {
    if (authors.size() > 1 && rng.Bernoulli(config.author_drop_prob)) {
      authors.erase(authors.begin() +
                    static_cast<std::ptrdiff_t>(rng.Index(authors.size())));
    }
    for (auto& author : authors) {
      if (rng.Bernoulli(config.author_initial_prob)) {
        author = corruptor.InitialForm(author);
      }
    }
  }
  record.fields[kAuthor] = Join(authors, " and ");

  // Title field.
  record.fields[kTitle] =
      canonical ? entity.title : corruptor.CorruptText(entity.title);

  // Venue field: full name or abbreviation.
  const auto& venue = wordlists::Venues()[entity.venue_index];
  const bool abbreviate = !canonical && rng.Bernoulli(config.venue_abbrev_prob);
  record.fields[kVenue] =
      std::string(abbreviate ? venue.second : venue.first);
  if (!canonical && rng.Bernoulli(0.15)) {
    record.fields[kVenue] = corruptor.CorruptText(record.fields[kVenue]);
  }

  // Date field.
  if (canonical || !rng.Bernoulli(config.year_missing_prob)) {
    int year = entity.year;
    if (!canonical && rng.Bernoulli(config.year_off_by_one_prob)) {
      year += rng.Bernoulli(0.5) ? 1 : -1;
    }
    record.fields[kDate] = StrFormat("%d", year);
  }

  // Pages field.
  if (canonical || !rng.Bernoulli(config.pages_missing_prob)) {
    if (!canonical && rng.Bernoulli(0.3)) {
      record.fields[kPages] =
          StrFormat("pages %d %d", entity.first_page, entity.last_page);
    } else {
      record.fields[kPages] =
          StrFormat("%d-%d", entity.first_page, entity.last_page);
    }
  }
  return record;
}

// ---------------------------------------------------------------------------
// Product entity/record construction (bipartite; see paper note above).
// ---------------------------------------------------------------------------

// Schema field indexes for the Product dataset.
constexpr int kName = 0;
constexpr int kPrice = 1;

struct ProductEntity {
  std::string brand;
  std::string model;  // e.g. "kx-3200b"
  std::vector<std::string> nouns;
  std::vector<std::string> adjectives;
  double price = 0.0;
};

std::string MakeModelCode(Rng& rng) {
  static constexpr char kLetters[] = "abcdefghijklmnopqrstuvwxyz";
  std::string code;
  const size_t prefix_len = 2 + rng.Index(2);
  for (size_t i = 0; i < prefix_len; ++i) {
    code += kLetters[rng.Index(26)];
  }
  code += '-';
  const size_t digits = 2 + rng.Index(3);
  for (size_t i = 0; i < digits; ++i) {
    code += static_cast<char>('0' + rng.Index(10));
  }
  if (rng.Bernoulli(0.4)) code += kLetters[rng.Index(26)];
  return code;
}

ProductEntity MakeProductEntity(Rng& rng) {
  const auto& brands = wordlists::Brands();
  const auto& nouns = wordlists::ProductNouns();
  const auto& adjectives = wordlists::ProductAdjectives();

  ProductEntity entity;
  entity.brand = std::string(brands[rng.Index(brands.size())]);
  entity.model = MakeModelCode(rng);
  const size_t num_nouns = 1 + rng.Index(2);
  for (size_t i = 0; i < num_nouns; ++i) {
    entity.nouns.emplace_back(nouns[rng.Index(nouns.size())]);
  }
  const size_t num_adjectives = 2 + rng.Index(3);
  for (size_t i = 0; i < num_adjectives; ++i) {
    entity.adjectives.emplace_back(adjectives[rng.Index(adjectives.size())]);
  }
  entity.price = 10.0 + rng.UniformDouble() * 1990.0;
  return entity;
}

Record MakeProductRecord(const ProductEntity& entity, ObjectId id,
                         uint8_t side, bool canonical,
                         const ProductDatasetConfig& config,
                         Corruptor& corruptor, Rng& rng) {
  Record record;
  record.id = id;
  record.fields.resize(2);

  std::string model = entity.model;
  bool include_model = true;
  if (!canonical) {
    if (rng.Bernoulli(config.drop_model_prob)) include_model = false;
    if (include_model && rng.Bernoulli(config.reformat_model_prob)) {
      // Strip the dash so the code tokenizes as one word instead of two.
      std::string compact;
      for (char c : model) {
        if (c != '-') compact += c;
      }
      model = compact;
    }
  }

  // Retailer-specific word order: side 0 leads with brand + model; side 1
  // leads with the description.
  std::vector<std::string> words;
  if (side == 0) {
    words.push_back(entity.brand);
    if (include_model) words.push_back(model);
    words.insert(words.end(), entity.adjectives.begin(),
                 entity.adjectives.end());
    words.insert(words.end(), entity.nouns.begin(), entity.nouns.end());
  } else {
    words.insert(words.end(), entity.adjectives.begin(),
                 entity.adjectives.end());
    words.insert(words.end(), entity.nouns.begin(), entity.nouns.end());
    words.push_back(entity.brand);
    if (include_model) words.push_back(model);
  }
  std::string name = Join(words, " ");
  if (!canonical) name = corruptor.CorruptText(name);
  record.fields[kName] = name;

  if (!rng.Bernoulli(config.price_missing_prob)) {
    const double price =
        canonical ? entity.price
                  : corruptor.JitterNumber(entity.price, config.price_jitter);
    record.fields[kPrice] = StrFormat("%.2f", price);
  }
  return record;
}

}  // namespace

// ---------------------------------------------------------------------------
// StreamingPaperSource
// ---------------------------------------------------------------------------

struct StreamingPaperSource::Impl {
  Impl(const PaperDatasetConfig& config, int32_t scale_factor)
      : config(config),
        cursor(config.seed, scale_factor,
               [this](Rng& rng) {
                 return SamplePowerLawClusterSizes(this->config.clusters, rng);
               }),
        corruptor(config.corruption, &cursor.rng()),
        title_sampler(wordlists::TitleWords().size(), 1.05) {
    meta.name = "paper";
    meta.schema.field_names = {"author", "title", "venue", "date", "pages"};
    meta.bipartite = false;
    meta.total_records =
        static_cast<int64_t>(scale_factor) * config.clusters.total_records;
  }

  bool Next(StreamedRecord* out) {
    if (!cursor.NextSlot()) return false;
    const bool canonical = cursor.new_entity();
    if (canonical) {
      current_entity = MakePaperEntity(cursor.rng(), title_sampler);
    }
    out->record = MakePaperRecord(current_entity, cursor.next_id(), canonical,
                                  config, corruptor, cursor.rng());
    out->entity = cursor.entity();
    out->side = 0;
    cursor.Advance();
    return true;
  }

  const PaperDatasetConfig config;
  StreamMeta meta;
  BlockCursor cursor;
  Corruptor corruptor;  // reads the cursor's rng through a stable pointer
  const ZipfSampler title_sampler;
  PaperEntity current_entity;
};

StreamingPaperSource::StreamingPaperSource(const PaperDatasetConfig& config,
                                           int32_t scale_factor)
    : impl_(std::make_unique<Impl>(config, scale_factor)) {}

StreamingPaperSource::~StreamingPaperSource() = default;

const StreamMeta& StreamingPaperSource::meta() const { return impl_->meta; }

bool StreamingPaperSource::Next(StreamedRecord* out) {
  return impl_->Next(out);
}

void StreamingPaperSource::Reset() { impl_->cursor.Restart(); }

Status StreamingPaperSource::status() const { return impl_->cursor.status(); }

// ---------------------------------------------------------------------------
// StreamingProductSource
// ---------------------------------------------------------------------------

struct StreamingProductSource::Impl {
  Impl(const ProductDatasetConfig& config, int32_t scale_factor)
      : config(config),
        cursor(config.seed, scale_factor,
               [this](Rng& rng) {
                 return SampleSmallClusterSizes(this->config.clusters, rng);
               }),
        corruptor(config.corruption, &cursor.rng()) {
    meta.name = "product";
    meta.schema.field_names = {"name", "price"};
    meta.bipartite = true;
    meta.total_records =
        static_cast<int64_t>(scale_factor) * config.clusters.total_records;
  }

  bool Next(StreamedRecord* out) {
    if (!cursor.NextSlot()) return false;
    const int32_t r = cursor.record_in_cluster();
    if (r == 0) {
      current_entity = MakeProductEntity(cursor.rng());
    }
    // Singleton clusters land on a random side; larger clusters alternate
    // so every multi-record entity spans both catalogs.
    uint8_t side = 0;
    if (cursor.cluster_size() == 1) {
      side = cursor.rng().Bernoulli(0.5) ? 1 : 0;
    } else {
      side = static_cast<uint8_t>(r % 2);
    }
    out->record = MakeProductRecord(current_entity, cursor.next_id(), side,
                                    /*canonical=*/r == 0, config, corruptor,
                                    cursor.rng());
    out->entity = cursor.entity();
    out->side = side;
    cursor.Advance();
    return true;
  }

  const ProductDatasetConfig config;
  StreamMeta meta;
  BlockCursor cursor;
  Corruptor corruptor;
  ProductEntity current_entity;
};

StreamingProductSource::StreamingProductSource(
    const ProductDatasetConfig& config, int32_t scale_factor)
    : impl_(std::make_unique<Impl>(config, scale_factor)) {}

StreamingProductSource::~StreamingProductSource() = default;

const StreamMeta& StreamingProductSource::meta() const { return impl_->meta; }

bool StreamingProductSource::Next(StreamedRecord* out) {
  return impl_->Next(out);
}

void StreamingProductSource::Reset() { impl_->cursor.Restart(); }

Status StreamingProductSource::status() const {
  return impl_->cursor.status();
}

}  // namespace crowdjoin
