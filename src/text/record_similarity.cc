#include "text/record_similarity.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "common/string_util.h"
#include "text/edit_distance.h"
#include "text/normalize.h"
#include "text/set_similarity.h"
#include "text/tokenize.h"

namespace crowdjoin {

RecordScorer::RecordScorer(std::vector<FieldSimilaritySpec> specs)
    : specs_(std::move(specs)), tfidf_models_(specs_.size()) {}

void RecordScorer::FitTfIdf(const RecordSet& records) {
  for (size_t s = 0; s < specs_.size(); ++s) {
    if (specs_[s].measure != FieldMeasure::kTfIdfCosine) continue;
    std::vector<std::vector<std::string>> docs;
    docs.reserve(records.size());
    for (const Record& r : records) {
      const size_t f = static_cast<size_t>(specs_[s].field_index);
      docs.push_back(f < r.fields.size() ? WordTokens(r.fields[f])
                                         : std::vector<std::string>{});
    }
    tfidf_models_[s] = TfIdfModel::Fit(docs);
  }
}

double ParseNumericField(const std::string& text) {
  const std::string trimmed(Trim(text));
  if (trimmed.empty()) return std::nan("");
  char* end = nullptr;
  const double value = std::strtod(trimmed.c_str(), &end);
  if (end == trimmed.c_str()) return std::nan("");
  return value;
}

double NumericProximity(double x, double y) {
  if (std::isnan(x) || std::isnan(y)) return 0.0;
  const double denom = std::max(std::abs(x), std::abs(y));
  if (denom == 0.0) return 1.0;
  return std::max(0.0, 1.0 - std::abs(x - y) / denom);
}

Result<double> RecordScorer::Score(const Record& a, const Record& b) const {
  if (specs_.empty()) {
    return Status::FailedPrecondition("RecordScorer has no field specs");
  }
  double total_weight = 0.0;
  double weighted_sum = 0.0;
  for (size_t s = 0; s < specs_.size(); ++s) {
    const FieldSimilaritySpec& spec = specs_[s];
    const size_t f = static_cast<size_t>(spec.field_index);
    if (f >= a.fields.size() || f >= b.fields.size()) {
      return Status::InvalidArgument(
          StrFormat("field index %d out of range", spec.field_index));
    }
    const std::string& fa = a.fields[f];
    const std::string& fb = b.fields[f];
    if (fa.empty() && fb.empty()) continue;  // skip; renormalize below

    double sim = 0.0;
    switch (spec.measure) {
      case FieldMeasure::kJaccardWords:
        sim = JaccardOfTokenSets(WordTokens(fa), WordTokens(fb));
        break;
      case FieldMeasure::kQGramJaccard:
        sim = JaccardOfTokenSets(QGrams(fa, spec.q), QGrams(fb, spec.q));
        break;
      case FieldMeasure::kLevenshtein:
        sim = LevenshteinSimilarity(NormalizeText(fa), NormalizeText(fb));
        break;
      case FieldMeasure::kJaroWinkler:
        sim = JaroWinklerSimilarity(NormalizeText(fa), NormalizeText(fb));
        break;
      case FieldMeasure::kTfIdfCosine: {
        if (tfidf_models_[s].num_documents() == 0) {
          return Status::FailedPrecondition(
              "kTfIdfCosine requires FitTfIdf() before Score()");
        }
        sim = tfidf_models_[s].Cosine(WordTokens(fa), WordTokens(fb));
        break;
      }
      case FieldMeasure::kNumeric:
        sim = NumericProximity(ParseNumericField(fa), ParseNumericField(fb));
        break;
    }
    weighted_sum += spec.weight * sim;
    total_weight += spec.weight;
  }
  if (total_weight == 0.0) return 0.0;
  return std::clamp(weighted_sum / total_weight, 0.0, 1.0);
}

}  // namespace crowdjoin
