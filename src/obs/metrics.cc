#include "obs/metrics.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <limits>

namespace crowdjoin::obs {

namespace {

[[noreturn]] void ObsFatal(const char* what, std::string_view name) {
  std::fprintf(stderr, "[obs] fatal: %s ('%.*s')\n", what,
               static_cast<int>(name.size()), name.data());
  std::abort();
}

bool ValidMetricName(std::string_view name) {
  if (name.empty()) return false;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

void AppendInt(std::string* out, int64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, value);
  out->append(buf);
}

std::string PrometheusName(std::string_view name) {
  std::string out = "crowdjoin_";
  for (const char c : name) {
    out.push_back(c == '.' || c == '-' ? '_' : c);
  }
  return out;
}

}  // namespace

int64_t NowNs() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - epoch)
      .count();
}

namespace internal {
const std::atomic<bool>& AlwaysEnabled() {
  static const std::atomic<bool> enabled{true};
  return enabled;
}
}  // namespace internal

int64_t Histogram::BucketUpperBound(int index) {
  if (index <= 0) return 0;
  if (index >= kHistogramBuckets - 1) {
    return std::numeric_limits<int64_t>::max();
  }
  return (int64_t{1} << index) - 1;
}

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked: detached threads may still increment handles during process
  // teardown, so the registry must outlive static destruction.
  static MetricsRegistry* const global = new MetricsRegistry();
  return *global;
}

void MetricsRegistry::CheckNameLocked(std::string_view name, Kind kind) const {
  if (!ValidMetricName(name)) ObsFatal("invalid metric name", name);
  const auto collides = [&](auto& entries, Kind entries_kind) {
    if (kind == entries_kind) return;
    for (const auto& entry : entries) {
      if (entry.name == name) {
        ObsFatal("metric name registered as a different kind", name);
      }
    }
  };
  collides(counters_, Kind::kCounter);
  collides(gauges_, Kind::kGauge);
  collides(histograms_, Kind::kHistogram);
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (CounterEntry& entry : counters_) {
    if (entry.name == name) return &entry.counter;
  }
  CheckNameLocked(name, Kind::kCounter);
  return &counters_.emplace_back(std::string(name), &enabled_).counter;
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (GaugeEntry& entry : gauges_) {
    if (entry.name == name) return &entry.gauge;
  }
  CheckNameLocked(name, Kind::kGauge);
  return &gauges_.emplace_back(std::string(name), &enabled_).gauge;
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (HistogramEntry& entry : histograms_) {
    if (entry.name == name) return &entry.histogram;
  }
  CheckNameLocked(name, Kind::kHistogram);
  return &histograms_.emplace_back(std::string(name), &enabled_).histogram;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  std::lock_guard<std::mutex> lock(mu_);
  snapshot.counters.reserve(counters_.size());
  for (const CounterEntry& entry : counters_) {
    snapshot.counters.push_back({entry.name, entry.counter.Value()});
  }
  snapshot.gauges.reserve(gauges_.size());
  for (const GaugeEntry& entry : gauges_) {
    snapshot.gauges.push_back({entry.name, entry.gauge.Value()});
  }
  snapshot.histograms.reserve(histograms_.size());
  for (const HistogramEntry& entry : histograms_) {
    HistogramSample sample;
    sample.name = entry.name;
    sample.count = entry.histogram.Count();
    sample.sum = entry.histogram.Sum();
    for (int b = 0; b < kHistogramBuckets; ++b) {
      sample.buckets[static_cast<size_t>(b)] = entry.histogram.BucketCount(b);
    }
    snapshot.histograms.push_back(std::move(sample));
  }
  const auto by_name = [](const auto& a, const auto& b) {
    return a.name < b.name;
  };
  std::sort(snapshot.counters.begin(), snapshot.counters.end(), by_name);
  std::sort(snapshot.gauges.begin(), snapshot.gauges.end(), by_name);
  std::sort(snapshot.histograms.begin(), snapshot.histograms.end(), by_name);
  return snapshot;
}

void MetricsRegistry::ResetForTesting() {
  std::lock_guard<std::mutex> lock(mu_);
  // The handles have no reset API on purpose (counters are monotone by
  // contract); rebuild them in place instead.
  for (CounterEntry& entry : counters_) {
    entry.counter.~Counter();
    new (&entry.counter) Counter(&enabled_);
  }
  for (GaugeEntry& entry : gauges_) {
    entry.gauge.~Gauge();
    new (&entry.gauge) Gauge(&enabled_);
  }
  for (HistogramEntry& entry : histograms_) {
    entry.histogram.~Histogram();
    new (&entry.histogram) Histogram(&enabled_);
  }
}

const CounterSample* MetricsSnapshot::FindCounter(std::string_view name) const {
  for (const CounterSample& sample : counters) {
    if (sample.name == name) return &sample;
  }
  return nullptr;
}

const GaugeSample* MetricsSnapshot::FindGauge(std::string_view name) const {
  for (const GaugeSample& sample : gauges) {
    if (sample.name == name) return &sample;
  }
  return nullptr;
}

const HistogramSample* MetricsSnapshot::FindHistogram(
    std::string_view name) const {
  for (const HistogramSample& sample : histograms) {
    if (sample.name == name) return &sample;
  }
  return nullptr;
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\n  \"counters\": {";
  for (size_t i = 0; i < counters.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += "    \"" + counters[i].name + "\": ";
    AppendInt(&out, counters[i].value);
  }
  out += counters.empty() ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  for (size_t i = 0; i < gauges.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += "    \"" + gauges[i].name + "\": ";
    AppendInt(&out, gauges[i].value);
  }
  out += gauges.empty() ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  for (size_t i = 0; i < histograms.size(); ++i) {
    const HistogramSample& h = histograms[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    \"" + h.name + "\": {\"count\": ";
    AppendInt(&out, h.count);
    out += ", \"sum\": ";
    AppendInt(&out, h.sum);
    out += ", \"buckets\": [";
    bool first = true;
    for (int b = 0; b < kHistogramBuckets; ++b) {
      const int64_t n = h.buckets[static_cast<size_t>(b)];
      if (n == 0) continue;
      if (!first) out += ", ";
      first = false;
      out += "{\"le\": ";
      AppendInt(&out, Histogram::BucketUpperBound(b));
      out += ", \"count\": ";
      AppendInt(&out, n);
      out += "}";
    }
    out += "]}";
  }
  out += histograms.empty() ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

std::string MetricsSnapshot::ToPrometheusText() const {
  std::string out;
  for (const CounterSample& c : counters) {
    const std::string name = PrometheusName(c.name);
    out += "# TYPE " + name + " counter\n" + name + " ";
    AppendInt(&out, c.value);
    out += "\n";
  }
  for (const GaugeSample& g : gauges) {
    const std::string name = PrometheusName(g.name);
    out += "# TYPE " + name + " gauge\n" + name + " ";
    AppendInt(&out, g.value);
    out += "\n";
  }
  for (const HistogramSample& h : histograms) {
    const std::string name = PrometheusName(h.name);
    out += "# TYPE " + name + " histogram\n";
    int64_t cumulative = 0;
    for (int b = 0; b < kHistogramBuckets; ++b) {
      const int64_t n = h.buckets[static_cast<size_t>(b)];
      if (n == 0) continue;
      cumulative += n;
      out += name + "_bucket{le=\"";
      AppendInt(&out, Histogram::BucketUpperBound(b));
      out += "\"} ";
      AppendInt(&out, cumulative);
      out += "\n";
    }
    out += name + "_bucket{le=\"+Inf\"} ";
    AppendInt(&out, h.count);
    out += "\n" + name + "_sum ";
    AppendInt(&out, h.sum);
    out += "\n" + name + "_count ";
    AppendInt(&out, h.count);
    out += "\n";
  }
  return out;
}

}  // namespace crowdjoin::obs
