#include "text/tokenize.h"

#include <algorithm>

#include "common/macros.h"
#include "common/string_util.h"
#include "text/normalize.h"

namespace crowdjoin {

std::vector<std::string> WordTokens(std::string_view text) {
  return SplitWhitespace(NormalizeText(text));
}

std::vector<std::string> QGrams(std::string_view text, int q) {
  CJ_CHECK(q >= 1);
  const std::string normalized = NormalizeText(text);
  std::vector<std::string> grams;
  if (normalized.empty()) return grams;
  std::string padded;
  padded.reserve(normalized.size() + 2 * static_cast<size_t>(q - 1));
  padded.append(static_cast<size_t>(q - 1), '$');
  padded += normalized;
  padded.append(static_cast<size_t>(q - 1), '$');
  const size_t count = padded.size() - static_cast<size_t>(q) + 1;
  grams.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    grams.push_back(padded.substr(i, static_cast<size_t>(q)));
  }
  return grams;
}

void SortUnique(std::vector<std::string>& tokens) {
  std::sort(tokens.begin(), tokens.end());
  tokens.erase(std::unique(tokens.begin(), tokens.end()), tokens.end());
}

}  // namespace crowdjoin
