#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <thread>
#include <vector>

namespace crowdjoin::obs {
namespace {

TEST(Counter, StartsAtZeroAndAccumulates) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("test.counter");
  EXPECT_EQ(counter->Value(), 0);
  counter->Inc();
  counter->Inc(41);
  EXPECT_EQ(counter->Value(), 42);
}

TEST(Counter, SameNameReturnsSameHandle) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("test.counter");
  Counter* b = registry.GetCounter("test.counter");
  EXPECT_EQ(a, b);
  a->Inc(3);
  EXPECT_EQ(b->Value(), 3);
}

TEST(Counter, HandlesStayValidAsRegistryGrows) {
  MetricsRegistry registry;
  Counter* first = registry.GetCounter("first");
  first->Inc();
  // Force growth past any small-buffer regime; the first handle must
  // survive (deque storage never relocates).
  for (int i = 0; i < 100; ++i) {
    registry.GetCounter("c" + std::to_string(i))->Inc();
  }
  EXPECT_EQ(first->Value(), 1);
  EXPECT_EQ(registry.Snapshot().counters.size(), 101u);
}

TEST(Counter, StripedWritesFromManyThreadsSumExactly) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("test.counter");
  constexpr int kThreads = 8;
  constexpr int kIncsPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([counter] {
      for (int i = 0; i < kIncsPerThread; ++i) counter->Inc();
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter->Value(), int64_t{kThreads} * kIncsPerThread);
}

TEST(Counter, DisabledRegistryDropsWrites) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("test.counter");
  registry.SetEnabled(false);
  counter->Inc(5);
  EXPECT_EQ(counter->Value(), 0);
  registry.SetEnabled(true);
  counter->Inc(5);
  EXPECT_EQ(counter->Value(), 5);
}

TEST(Counter, StandaloneCounterIsAlwaysEnabled) {
  Counter counter;
  counter.Inc(7);
  EXPECT_EQ(counter.Value(), 7);
}

TEST(Gauge, SetAndAdd) {
  MetricsRegistry registry;
  Gauge* gauge = registry.GetGauge("test.gauge");
  EXPECT_EQ(gauge->Value(), 0);
  gauge->Set(10);
  EXPECT_EQ(gauge->Value(), 10);
  gauge->Add(-3);
  EXPECT_EQ(gauge->Value(), 7);
  registry.SetEnabled(false);
  gauge->Set(100);
  EXPECT_EQ(gauge->Value(), 7);
}

TEST(Histogram, BucketIndexBoundaries) {
  EXPECT_EQ(Histogram::BucketIndex(-5), 0);
  EXPECT_EQ(Histogram::BucketIndex(0), 0);
  EXPECT_EQ(Histogram::BucketIndex(1), 1);
  EXPECT_EQ(Histogram::BucketIndex(2), 2);
  EXPECT_EQ(Histogram::BucketIndex(3), 2);
  EXPECT_EQ(Histogram::BucketIndex(4), 3);
  EXPECT_EQ(Histogram::BucketIndex(7), 3);
  EXPECT_EQ(Histogram::BucketIndex(8), 4);
  EXPECT_EQ(Histogram::BucketIndex(1023), 10);
  EXPECT_EQ(Histogram::BucketIndex(1024), 11);
  EXPECT_EQ(Histogram::BucketIndex(std::numeric_limits<int64_t>::max()),
            kHistogramBuckets - 1);
}

TEST(Histogram, BucketUpperBoundsMatchIndexing) {
  // Every bucket's upper bound must land back in that bucket, and the next
  // value in the following bucket — the two exports rely on this.
  for (int b = 0; b < kHistogramBuckets - 1; ++b) {
    const int64_t ub = Histogram::BucketUpperBound(b);
    EXPECT_EQ(Histogram::BucketIndex(ub), b) << "bucket " << b;
    EXPECT_EQ(Histogram::BucketIndex(ub + 1), b + 1) << "bucket " << b;
  }
  EXPECT_EQ(Histogram::BucketUpperBound(kHistogramBuckets - 1),
            std::numeric_limits<int64_t>::max());
}

TEST(Histogram, ObserveTracksCountSumAndBuckets) {
  MetricsRegistry registry;
  Histogram* hist = registry.GetHistogram("test.hist");
  hist->Observe(0);
  hist->Observe(1);
  hist->Observe(5);
  hist->Observe(5);
  EXPECT_EQ(hist->Count(), 4);
  EXPECT_EQ(hist->Sum(), 11);
  EXPECT_EQ(hist->BucketCount(0), 1);
  EXPECT_EQ(hist->BucketCount(1), 1);
  EXPECT_EQ(hist->BucketCount(3), 2);
}

TEST(Histogram, NegativeValuesCountButDoNotReduceSum) {
  MetricsRegistry registry;
  Histogram* hist = registry.GetHistogram("test.hist");
  hist->Observe(-100);
  hist->Observe(10);
  EXPECT_EQ(hist->Count(), 2);
  EXPECT_EQ(hist->Sum(), 10);
}

TEST(Histogram, DisabledRegistryDropsObservations) {
  MetricsRegistry registry;
  Histogram* hist = registry.GetHistogram("test.hist");
  registry.SetEnabled(false);
  hist->Observe(3);
  EXPECT_EQ(hist->Count(), 0);
}

TEST(ScopedLatencyUs, ObservesOncePerScope) {
  MetricsRegistry registry;
  Histogram* hist = registry.GetHistogram("test.latency_us");
  { ScopedLatencyUs timer(hist); }
  EXPECT_EQ(hist->Count(), 1);
  EXPECT_GE(hist->Sum(), 0);
}

TEST(ScopedLatencyUs, DisabledAtConstructionSkipsObservation) {
  MetricsRegistry registry;
  Histogram* hist = registry.GetHistogram("test.latency_us");
  registry.SetEnabled(false);
  {
    ScopedLatencyUs timer(hist);
    // Re-enabling mid-scope must not produce a bogus sample: the decision
    // was taken at construction.
    registry.SetEnabled(true);
  }
  EXPECT_EQ(hist->Count(), 0);
}

TEST(MetricsRegistry, SnapshotIsNameSortedAndComplete) {
  MetricsRegistry registry;
  registry.GetCounter("z.last")->Inc(1);
  registry.GetCounter("a.first")->Inc(2);
  registry.GetGauge("m.middle")->Set(3);
  registry.GetHistogram("h.hist")->Observe(4);
  const MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.counters.size(), 2u);
  EXPECT_EQ(snapshot.counters[0].name, "a.first");
  EXPECT_EQ(snapshot.counters[0].value, 2);
  EXPECT_EQ(snapshot.counters[1].name, "z.last");
  ASSERT_EQ(snapshot.gauges.size(), 1u);
  EXPECT_EQ(snapshot.gauges[0].value, 3);
  ASSERT_EQ(snapshot.histograms.size(), 1u);
  EXPECT_EQ(snapshot.histograms[0].count, 1);
  EXPECT_EQ(snapshot.histograms[0].sum, 4);
  EXPECT_NE(snapshot.FindCounter("a.first"), nullptr);
  EXPECT_EQ(snapshot.FindCounter("missing"), nullptr);
  EXPECT_NE(snapshot.FindGauge("m.middle"), nullptr);
  EXPECT_NE(snapshot.FindHistogram("h.hist"), nullptr);
}

TEST(MetricsRegistry, ResetForTestingZeroesEverything) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("c");
  Gauge* gauge = registry.GetGauge("g");
  Histogram* hist = registry.GetHistogram("h");
  counter->Inc(5);
  gauge->Set(6);
  hist->Observe(7);
  registry.ResetForTesting();
  EXPECT_EQ(counter->Value(), 0);
  EXPECT_EQ(gauge->Value(), 0);
  EXPECT_EQ(hist->Count(), 0);
  EXPECT_EQ(hist->Sum(), 0);
  // Handles still work after the in-place rebuild.
  counter->Inc();
  EXPECT_EQ(counter->Value(), 1);
}

TEST(MetricsRegistry, GlobalIsEnabledByDefault) {
  EXPECT_TRUE(MetricsRegistry::Global().enabled());
}

TEST(MetricsRegistryDeathTest, InvalidNameAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  MetricsRegistry registry;
  EXPECT_DEATH(registry.GetCounter("has space"), "invalid metric name");
  EXPECT_DEATH(registry.GetCounter(""), "invalid metric name");
}

TEST(MetricsRegistryDeathTest, CrossKindNameCollisionAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  MetricsRegistry registry;
  registry.GetCounter("one.name");
  EXPECT_DEATH(registry.GetGauge("one.name"), "different kind");
}

}  // namespace
}  // namespace crowdjoin::obs
