#ifndef CROWDJOIN_DATAGEN_DATASET_H_
#define CROWDJOIN_DATAGEN_DATASET_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/oracle.h"
#include "text/record.h"

namespace crowdjoin {

/// \brief A generated entity-resolution dataset: records plus ground truth.
///
/// Records carry dense ids `[0, records.size())`. `entity_of[i]` is the
/// true entity of record i; two records match iff their entities coincide.
/// Bipartite datasets (the Product setting) additionally assign each record
/// to side 0 or 1, and only cross-side pairs are join candidates.
struct Dataset {
  std::string name;
  Schema schema;
  RecordSet records;
  std::vector<int32_t> entity_of;
  bool bipartite = false;
  std::vector<uint8_t> side_of;  ///< empty unless bipartite

  /// Appends one record with its ground truth (self-join datasets).
  void AddRecord(Record record, int32_t entity) {
    records.push_back(std::move(record));
    entity_of.push_back(entity);
  }

  /// Appends one record with its ground truth and catalog side (bipartite
  /// datasets). Keeps the per-side counts cached so `SideCount` is O(1).
  void AddRecord(Record record, int32_t entity, uint8_t side) {
    records.push_back(std::move(record));
    entity_of.push_back(entity);
    side_of.push_back(side);
    if (side < 2) ++cached_side_counts_[side];
  }

  /// Number of records on the given side (bipartite only). O(1) for
  /// datasets built through `AddRecord`; falls back to a scan for
  /// hand-assembled ones (where `side_of` was filled directly). The two
  /// styles must not be mixed: rewriting `side_of` elements in place on an
  /// `AddRecord`-built dataset leaves the cached counts stale (the guard
  /// below only detects appends/removals) — append through `AddRecord` or
  /// assemble `side_of` wholesale, never both.
  int64_t SideCount(uint8_t side) const {
    if (side < 2 && cached_side_counts_[0] + cached_side_counts_[1] ==
                        static_cast<int64_t>(side_of.size())) {
      return cached_side_counts_[side];
    }
    int64_t count = 0;
    for (uint8_t s : side_of) count += (s == side) ? 1 : 0;
    return count;
  }

 private:
  int64_t cached_side_counts_[2] = {0, 0};
};

/// Cluster size -> number of ground-truth clusters of that size
/// (the Figure 10 distribution).
std::map<int32_t, int64_t> ClusterSizeHistogram(const Dataset& dataset);

/// Number of truly matching candidate-eligible pairs: C(k,2) per cluster
/// for self-join datasets; cross-side pairs only for bipartite ones.
int64_t NumTrueMatchingPairs(const Dataset& dataset);

/// Total candidate-eligible pairs: C(n,2) (self-join) or |A|*|B| (bipartite).
int64_t NumEligiblePairs(const Dataset& dataset);

/// Builds the always-correct oracle for this dataset's ground truth.
GroundTruthOracle MakeGroundTruthOracle(const Dataset& dataset);

}  // namespace crowdjoin

#endif  // CROWDJOIN_DATAGEN_DATASET_H_
