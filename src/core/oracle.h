#ifndef CROWDJOIN_CORE_ORACLE_H_
#define CROWDJOIN_CORE_ORACLE_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "graph/label.h"

namespace crowdjoin {

/// \brief Source of pair labels, abstracting "ask the crowd" in simulation.
///
/// The labelers call this once per crowdsourced pair. Implementations:
/// ground truth (the paper's correct-answer assumption, Section 2.1) and a
/// noisy wrapper used for the quality experiments (Table 2).
class LabelOracle {
 public:
  virtual ~LabelOracle() = default;

  /// The label the crowd returns for pair (a, b).
  virtual Label GetLabel(ObjectId a, ObjectId b) = 0;

  /// Number of labels served so far (i.e. crowdsourced pairs billed).
  int64_t num_queries() const { return num_queries_; }

 protected:
  int64_t num_queries_ = 0;
};

/// \brief Always-correct oracle backed by an entity assignment: objects
/// match iff they map to the same entity id.
class GroundTruthOracle : public LabelOracle {
 public:
  /// `entity_of[o]` is the ground-truth entity of object `o`.
  explicit GroundTruthOracle(std::vector<int32_t> entity_of)
      : entity_of_(std::move(entity_of)) {}

  Label GetLabel(ObjectId a, ObjectId b) override {
    ++num_queries_;
    return Truth(a, b);
  }

  /// The true label, without counting a query (for evaluation).
  Label Truth(ObjectId a, ObjectId b) const {
    return entity_of_[static_cast<size_t>(a)] ==
                   entity_of_[static_cast<size_t>(b)]
               ? Label::kMatching
               : Label::kNonMatching;
  }

  /// The backing entity assignment.
  const std::vector<int32_t>& entity_of() const { return entity_of_; }

 private:
  std::vector<int32_t> entity_of_;
};

/// \brief Oracle that flips the true label with class-dependent error
/// rates, modelling an (un-aggregated) crowd worker's answer.
///
/// `false_negative_rate` is the probability a truly matching pair is
/// answered "non-matching"; `false_positive_rate` the reverse. Aggregation
/// (majority voting across assignments) lives in the crowd module.
class NoisyOracle : public LabelOracle {
 public:
  NoisyOracle(const GroundTruthOracle* truth, double false_negative_rate,
              double false_positive_rate, Rng rng)
      : truth_(truth),
        false_negative_rate_(false_negative_rate),
        false_positive_rate_(false_positive_rate),
        rng_(rng) {}

  Label GetLabel(ObjectId a, ObjectId b) override {
    ++num_queries_;
    const Label real = truth_->Truth(a, b);
    if (real == Label::kMatching) {
      return rng_.Bernoulli(false_negative_rate_) ? Label::kNonMatching
                                                  : Label::kMatching;
    }
    return rng_.Bernoulli(false_positive_rate_) ? Label::kMatching
                                                : Label::kNonMatching;
  }

 private:
  const GroundTruthOracle* truth_;
  double false_negative_rate_;
  double false_positive_rate_;
  Rng rng_;
};

}  // namespace crowdjoin

#endif  // CROWDJOIN_CORE_ORACLE_H_
