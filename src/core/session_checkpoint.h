#ifndef CROWDJOIN_CORE_SESSION_CHECKPOINT_H_
#define CROWDJOIN_CORE_SESSION_CHECKPOINT_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "core/labeling_result.h"
#include "graph/cluster_graph.h"

namespace crowdjoin {

/// \brief Durable-campaign knobs for `LabelingSession::RunStream`.
///
/// With a non-empty `path` the session writes its round frontier to `path`
/// after every `every_rounds` completed stream rounds — atomically, via
/// write-to-temp + rename, so a kill at any instant leaves either the old
/// checkpoint or the new one, never a torn file. On the next run with
/// `resume` set, the session loads the checkpoint, fast-forwards the
/// candidate stream past the completed rounds (streams are deterministic,
/// so skipping re-consumes the same candidates without labeling them), and
/// continues — producing a final report byte-identical to an uninterrupted
/// run.
///
/// Checkpointing requires a transitive-only rule chain: the cluster graph
/// is persisted as its `Add` log (see `LoggedEdge`), and replay of that
/// log is what reconstructs the deduction state.
struct SessionCheckpointOptions {
  /// Checkpoint file. Empty disables checkpointing entirely.
  std::string path;

  /// Write after every this-many completed rounds (>= 1).
  int64_t every_rounds = 1;

  /// Campaign-configuration fingerprint (hash whatever identifies the
  /// workload: scale, threshold, seed, order, schedule). A checkpoint
  /// written under a different fingerprint is rejected at resume —
  /// resuming someone else's frontier would silently corrupt the run.
  uint64_t fingerprint = 0;

  /// Attempt to resume from an existing file at `path`. A missing file is
  /// a fresh start, not an error.
  bool resume = true;

  /// Test/harness hook invoked after each successful write with the number
  /// of completed rounds the file now covers (the kill-and-resume harness
  /// SIGKILLs the process from here).
  std::function<void(int64_t completed_rounds)> after_write;
};

/// \brief Everything `RunStream` needs to continue a campaign from the end
/// of round `completed_rounds`: the report so far, the budget left, the
/// cluster graph as its Add log, the stream cursor (as a candidate count,
/// for verification while fast-forwarding), and the order-RNG state.
struct SessionCheckpointState {
  uint64_t fingerprint = 0;
  int64_t completed_rounds = 0;
  /// Candidates consumed from the stream so far; re-counted during the
  /// fast-forward and verified, catching a changed stream early.
  int64_t candidates_consumed = 0;
  int32_t num_objects = 0;
  int64_t remaining_budget = -1;

  // LabelingReport fields accumulated so far.
  int64_t num_candidates = 0;
  int64_t num_crowdsourced = 0;
  int64_t num_deduced = 0;
  int64_t num_unlabeled = 0;
  int64_t num_stream_rounds = 0;
  std::vector<int64_t> crowdsourced_per_iteration;
  std::vector<std::optional<PairOutcome>> outcomes;

  /// The transitive rule's graph, as the full `Add` log.
  std::vector<LoggedEdge> edge_log;

  /// Order-RNG state (random labeling orders), absent when no RNG drives
  /// the order.
  bool has_order_rng = false;
  Rng::State order_rng = {};
};

/// Serializes `state` to the versioned checkpoint wire format (magic +
/// fields + FNV-1a checksum; see common/serialize.h).
std::string EncodeSessionCheckpoint(const SessionCheckpointState& state);

/// Parses a checkpoint file's bytes. Fails with `InvalidArgument` on a
/// bad magic/version and `OutOfRange`/`FailedPrecondition` on truncation
/// or checksum mismatch.
Result<SessionCheckpointState> DecodeSessionCheckpoint(std::string_view data);

/// Loads and decodes the checkpoint at `path`. `NotFound` when absent.
Result<SessionCheckpointState> LoadSessionCheckpoint(const std::string& path);

/// Encodes `state` and writes it to `path` atomically.
Status SaveSessionCheckpoint(const std::string& path,
                             const SessionCheckpointState& state);

}  // namespace crowdjoin

#endif  // CROWDJOIN_CORE_SESSION_CHECKPOINT_H_
