#include "simjoin/sharded_join.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "simjoin/similarity_join.h"

namespace crowdjoin {
namespace {

struct Corpus {
  TokenDictionary dictionary;
  std::vector<std::vector<int32_t>> docs;
};

Corpus MakeRandomCorpus(uint64_t seed, size_t num_docs, size_t vocabulary,
                        size_t min_len, size_t max_len) {
  Corpus corpus;
  Rng rng(seed);
  for (size_t d = 0; d < num_docs; ++d) {
    const size_t len = min_len + rng.Index(max_len - min_len + 1);
    std::vector<std::string> tokens;
    for (size_t t = 0; t < len; ++t) {
      tokens.push_back(StrFormat(
          "w%llu", static_cast<unsigned long long>(rng.Index(vocabulary))));
    }
    corpus.docs.push_back(corpus.dictionary.AddDocument(tokens));
  }
  return corpus;
}

// The acceptance matrix: byte-identical ScoredPair output (pairs, scores,
// order) at every tested (threads, shards, threshold) combination.
constexpr int kThreadCounts[] = {0, 1, 2, 4, 8};
constexpr int kShardCounts[] = {1, 2, 3, 7, 16};
constexpr double kThresholds[] = {0.3, 0.5, 0.8, 1.0};

TEST(ShardedSelfJoin, ByteIdenticalToSequentialAcrossMatrix) {
  const Corpus corpus = MakeRandomCorpus(/*seed=*/901, /*num_docs=*/160,
                                         /*vocabulary=*/70, 2, 12);
  for (double threshold : kThresholds) {
    const auto sequential =
        PrefixFilterSelfJoin(corpus.docs, corpus.dictionary, threshold)
            .value();
    for (int shards : kShardCounts) {
      for (int threads : kThreadCounts) {
        ShardedJoinOptions options;
        options.num_shards = shards;
        options.num_threads = threads;
        const auto sharded =
            ShardedSelfJoin(corpus.docs, corpus.dictionary, threshold,
                            options)
                .value();
        ASSERT_EQ(sharded, sequential)
            << "threshold=" << threshold << " shards=" << shards
            << " threads=" << threads;
      }
    }
  }
}

TEST(ShardedBipartiteJoin, ByteIdenticalToSequentialAcrossMatrix) {
  const Corpus corpus = MakeRandomCorpus(/*seed=*/902, /*num_docs=*/180,
                                         /*vocabulary=*/60, 2, 10);
  const std::vector<std::vector<int32_t>> left(corpus.docs.begin(),
                                               corpus.docs.begin() + 70);
  const std::vector<std::vector<int32_t>> right(corpus.docs.begin() + 70,
                                                corpus.docs.end());
  for (double threshold : kThresholds) {
    const auto sequential =
        PrefixFilterBipartiteJoin(left, right, corpus.dictionary, threshold)
            .value();
    for (int shards : kShardCounts) {
      for (int threads : kThreadCounts) {
        ShardedJoinOptions options;
        options.num_shards = shards;
        options.num_threads = threads;
        const auto sharded = ShardedBipartiteJoin(left, right,
                                                  corpus.dictionary,
                                                  threshold, options)
                                 .value();
        ASSERT_EQ(sharded, sequential)
            << "threshold=" << threshold << " shards=" << shards
            << " threads=" << threads;
      }
    }
  }
}

TEST(ShardedSelfJoin, MatchesBruteForceOnRandomSeeds) {
  for (uint64_t seed = 950; seed < 955; ++seed) {
    const Corpus corpus =
        MakeRandomCorpus(seed, /*num_docs=*/90, /*vocabulary=*/40, 3, 9);
    for (double threshold : {0.4, 0.7}) {
      ShardedJoinOptions options;
      options.num_shards = 5;
      options.num_threads = 2;
      const auto sharded =
          ShardedSelfJoin(corpus.docs, corpus.dictionary, threshold, options)
              .value();
      auto brute = BruteForceSelfJoin(corpus.docs, threshold);
      std::sort(brute.begin(), brute.end(),
                [](const ScoredPair& a, const ScoredPair& b) {
                  if (a.left != b.left) return a.left < b.left;
                  return a.right < b.right;
                });
      EXPECT_EQ(sharded, brute) << "seed=" << seed
                                << " threshold=" << threshold;
    }
  }
}

TEST(ShardedSelfJoiner, StreamingIngestMatchesBulkWrapper) {
  const Corpus corpus = MakeRandomCorpus(/*seed=*/903, /*num_docs=*/120,
                                         /*vocabulary=*/50, 2, 10);
  ShardedSelfJoiner joiner(/*num_shards=*/4);
  for (const auto& doc : corpus.docs) joiner.Add(doc);
  EXPECT_EQ(joiner.num_docs(), 120);
  ThreadPool pool(3);
  const auto streamed = joiner.Finish(corpus.dictionary, 0.5, &pool).value();
  ShardedJoinOptions options;
  options.num_shards = 4;
  const auto bulk =
      ShardedSelfJoin(corpus.docs, corpus.dictionary, 0.5, options).value();
  EXPECT_EQ(streamed, bulk);
}

TEST(ShardedSelfJoiner, FinishIsRepeatableAtMultipleThresholds) {
  const Corpus corpus = MakeRandomCorpus(/*seed=*/904, /*num_docs=*/80,
                                         /*vocabulary=*/40, 2, 8);
  ShardedSelfJoiner joiner(/*num_shards=*/3);
  for (const auto& doc : corpus.docs) joiner.Add(doc);
  for (double threshold : {0.3, 0.6, 0.9}) {
    const auto first =
        joiner.Finish(corpus.dictionary, threshold, nullptr).value();
    const auto second =
        joiner.Finish(corpus.dictionary, threshold, nullptr).value();
    EXPECT_EQ(first, second) << "threshold=" << threshold;
    const auto sequential =
        PrefixFilterSelfJoin(corpus.docs, corpus.dictionary, threshold)
            .value();
    EXPECT_EQ(first, sequential) << "threshold=" << threshold;
  }
}

TEST(ShardedSelfJoin, EmptyAndDegenerateInputs) {
  TokenDictionary dict;
  ShardedJoinOptions options;
  options.num_shards = 4;
  // Empty corpus.
  EXPECT_TRUE(ShardedSelfJoin({}, dict, 0.5, options).value().empty());
  // All-empty docs produce nothing (mirrors the sequential join).
  std::vector<std::vector<int32_t>> empties(5);
  EXPECT_TRUE(
      ShardedSelfJoin(empties, dict, 0.5, options).value().empty());
  // Bipartite with empty docs mixed in on both sides: byte-identical to
  // the sequential join (which must also survive empty left docs).
  std::vector<std::vector<int32_t>> left = {{}, dict.AddDocument({"a", "b"})};
  std::vector<std::vector<int32_t>> right = {{},
                                             dict.AddDocument({"a", "b"})};
  EXPECT_EQ(ShardedBipartiteJoin(left, right, dict, 0.5, options).value(),
            PrefixFilterBipartiteJoin(left, right, dict, 0.5).value());
  // Fewer docs than shards.
  std::vector<std::vector<int32_t>> docs;
  docs.push_back(dict.AddDocument({"a", "b"}));
  docs.push_back(dict.AddDocument({"a", "b"}));
  options.num_shards = 16;
  const auto result = ShardedSelfJoin(docs, dict, 1.0, options).value();
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].left, 0);
  EXPECT_EQ(result[0].right, 1);
}

TEST(ShardedSelfJoin, InvalidThresholdsAreRejected) {
  const TokenDictionary dict;
  const ShardedJoinOptions options;
  EXPECT_EQ(ShardedSelfJoin({}, dict, 0.0, options).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ShardedSelfJoin({}, dict, 1.5, options).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ShardedBipartiteJoin({}, {}, dict, -0.5, options).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace crowdjoin
