#include "crowd/orchestrator.h"

#include <deque>
#include <unordered_map>

#include "common/macros.h"
#include "crowd/platform.h"

namespace crowdjoin {

namespace {

PairTask MakeTask(const CandidateSet& pairs, int32_t pos) {
  const CandidatePair& pair = pairs[static_cast<size_t>(pos)];
  return {pos, pair.a, pair.b, pair.likelihood};
}

// Pops up to `limit` positions from the front of `queue` into one HIT.
std::vector<PairTask> TakeHitTasks(const CandidateSet& pairs,
                                   std::deque<int32_t>& queue, int limit) {
  std::vector<PairTask> tasks;
  while (!queue.empty() && static_cast<int>(tasks.size()) < limit) {
    tasks.push_back(MakeTask(pairs, queue.front()));
    queue.pop_front();
  }
  return tasks;
}

LabelingSession MakeInstantSession() {
  LabelingSessionOptions options;
  options.schedule = SchedulePolicy::kInstantDecision;
  return LabelingSession(options);
}

// Copies a fully-labeled report's labels into the campaign stats.
void FillAmtStats(const LabelingReport& report, CrowdPlatform& platform,
                  AmtRunStats& stats) {
  stats.final_labels.reserve(report.outcomes.size());
  for (const std::optional<PairOutcome>& outcome : report.outcomes) {
    CJ_CHECK(outcome.has_value());
    stats.final_labels.push_back(outcome->label);
  }
  stats.num_hits = platform.num_hits_published();
  stats.num_assignments = platform.num_assignments_completed();
  stats.total_hours = platform.now_hours();
  stats.total_cost_cents = platform.total_cost_cents();
  stats.num_crowdsourced_pairs = report.num_crowdsourced;
  stats.num_deduced_pairs = report.num_deduced;
}

}  // namespace

Result<AmtRunStats> RunNonTransitiveAmt(const CandidateSet& pairs,
                                        const CrowdConfig& config,
                                        const GroundTruthOracle& truth) {
  CrowdPlatform platform(config, &truth);
  std::deque<int32_t> queue;
  for (size_t i = 0; i < pairs.size(); ++i) {
    queue.push_back(static_cast<int32_t>(i));
  }
  while (!queue.empty()) {
    CJ_ASSIGN_OR_RETURN(
        int64_t hit_id,
        platform.PublishHit(TakeHitTasks(pairs, queue, config.pairs_per_hit)));
    (void)hit_id;
  }

  AmtRunStats stats;
  stats.final_labels.assign(pairs.size(), Label::kNonMatching);
  while (auto result = platform.RunUntilNextHitCompletion()) {
    for (const CompletedPair& pair : result->pairs) {
      stats.final_labels[static_cast<size_t>(pair.position)] = pair.label;
    }
  }
  stats.num_hits = platform.num_hits_published();
  stats.num_assignments = platform.num_assignments_completed();
  stats.total_hours = platform.now_hours();
  stats.total_cost_cents = platform.total_cost_cents();
  stats.num_crowdsourced_pairs = static_cast<int64_t>(pairs.size());
  stats.num_deduced_pairs = 0;
  return stats;
}

Result<AmtRunStats> RunTransitiveAmt(const CandidateSet& pairs,
                                     const std::vector<int32_t>& order,
                                     const CrowdConfig& config,
                                     const GroundTruthOracle& truth) {
  CrowdPlatform platform(config, &truth);
  LabelingSession session = MakeInstantSession();
  std::deque<int32_t> buffer;

  CJ_ASSIGN_OR_RETURN(const std::vector<int32_t> initial,
                      session.Start(&pairs, order));
  buffer.insert(buffer.end(), initial.begin(), initial.end());

  int64_t in_flight = 0;
  while (true) {
    // Publish full HITs; flush a partial HIT only when the platform would
    // otherwise go idle (nothing in flight to produce more work).
    while (static_cast<int>(buffer.size()) >= config.pairs_per_hit) {
      CJ_ASSIGN_OR_RETURN(int64_t hit_id,
                          platform.PublishHit(TakeHitTasks(
                              pairs, buffer, config.pairs_per_hit)));
      (void)hit_id;
      ++in_flight;
    }
    if (in_flight == 0) {
      if (buffer.empty()) break;  // campaign complete
      CJ_ASSIGN_OR_RETURN(int64_t hit_id,
                          platform.PublishHit(TakeHitTasks(
                              pairs, buffer, config.pairs_per_hit)));
      (void)hit_id;
      ++in_flight;
    }
    auto result = platform.RunUntilNextHitCompletion();
    CJ_CHECK(result.has_value());  // in_flight > 0 implies pending work
    --in_flight;
    for (const CompletedPair& pair : result->pairs) {
      CJ_ASSIGN_OR_RETURN(const std::vector<int32_t> fresh,
                          session.OnPairLabeled(pair.position, pair.label));
      buffer.insert(buffer.end(), fresh.begin(), fresh.end());
    }
  }

  CJ_ASSIGN_OR_RETURN(const LabelingReport labeling, session.Finish());
  AmtRunStats stats;
  FillAmtStats(labeling, platform, stats);
  return stats;
}

Result<AmtRunStats> RunParallelAmt(const CandidateSet& pairs,
                                   const std::vector<int32_t>& order,
                                   const CrowdConfig& config,
                                   const GroundTruthOracle& truth) {
  CrowdPlatform platform(config, &truth);
  // Label resolution comes from the platform (which already services a
  // round's HITs concurrently via the simulated worker pool), so the
  // session is constructed without a thread count — config.num_threads
  // applies to oracle-driven local labeling (RunLocalParallelLabeling).
  LabelingSessionOptions session_options;
  session_options.schedule = SchedulePolicy::kRoundParallel;
  LabelingSession session(session_options);
  CJ_ASSIGN_OR_RETURN(
      const LabelingReport labeling,
      session.RunWithBatchSource(
          pairs, order,
          [&](const std::vector<int32_t>& batch)
              -> Result<std::vector<Label>> {
            // Publish the whole round simultaneously, batched into HITs.
            std::deque<int32_t> queue(batch.begin(), batch.end());
            int64_t in_flight = 0;
            while (!queue.empty()) {
              CJ_ASSIGN_OR_RETURN(
                  int64_t hit_id,
                  platform.PublishHit(
                      TakeHitTasks(pairs, queue, config.pairs_per_hit)));
              (void)hit_id;
              ++in_flight;
            }
            // Algorithm 2's round barrier: wait for every HIT before the
            // deduction scan, collecting majority votes by batch slot.
            std::unordered_map<int32_t, size_t> slot_of;
            for (size_t i = 0; i < batch.size(); ++i) {
              slot_of[batch[i]] = i;
            }
            std::vector<Label> labels(batch.size(), Label::kNonMatching);
            size_t num_answered = 0;
            while (in_flight > 0) {
              auto completed = platform.RunUntilNextHitCompletion();
              CJ_CHECK(completed.has_value());
              --in_flight;
              for (const CompletedPair& pair : completed->pairs) {
                const auto it = slot_of.find(pair.position);
                CJ_CHECK(it != slot_of.end());
                labels[it->second] = pair.label;
                ++num_answered;
              }
            }
            // Every slot answered exactly once — an unanswered slot would
            // otherwise silently keep the kNonMatching default.
            CJ_CHECK(num_answered == batch.size());
            return labels;
          }));

  AmtRunStats stats;
  FillAmtStats(labeling, platform, stats);
  return stats;
}

Result<LabelingReport> RunLocalParallelLabeling(
    const CandidateSet& pairs, const std::vector<int32_t>& order,
    const CrowdConfig& config, const GroundTruthOracle& truth) {
  LabelingSessionOptions session_options;
  session_options.schedule = SchedulePolicy::kRoundParallel;
  session_options.num_threads = config.num_threads;
  LabelingSession session(session_options);
  if (config.false_negative_rate == 0.0 &&
      config.false_positive_rate == 0.0) {
    GroundTruthOracle oracle = truth;
    return session.Run(pairs, order, oracle);
  }
  HashNoisyOracle oracle(&truth, config.false_negative_rate,
                         config.false_positive_rate, config.seed);
  return session.Run(pairs, order, oracle);
}

Result<StreamingCampaignStats> RunStreamingCampaign(
    RecordSource& source, const RecordScorer* scorer,
    const StreamingCampaignConfig& config) {
  StreamingCampaignStats stats;

  if (config.label_tasks_per_round > 0) {
    // Round-by-round mode: candidates flow from the sharded join's probe
    // tasks straight into the labeling session; the candidate set is never
    // materialized (peak candidate memory = one round).
    if (scorer != nullptr) {
      return Status::InvalidArgument(
          "round-by-round labeling requires the scorer-free path");
    }
    StreamingCandidateFeed::Options feed_options;
    feed_options.candidates = config.candidates;
    feed_options.sharding = config.sharding;
    feed_options.tasks_per_round = config.label_tasks_per_round;
    CJ_ASSIGN_OR_RETURN(
        const std::unique_ptr<StreamingCandidateFeed> feed,
        StreamingCandidateFeed::Open(source, feed_options));
    stats.entity_of = feed->entity_of();
    stats.num_records = feed->num_records();

    const GroundTruthOracle truth(stats.entity_of);
    Rng order_rng(config.crowd.seed);
    LabelingSessionOptions session_options;
    session_options.schedule = SchedulePolicy::kRoundParallel;
    session_options.num_threads = config.crowd.num_threads;
    LabelingSession session(session_options);
    if (config.crowd.false_negative_rate == 0.0 &&
        config.crowd.false_positive_rate == 0.0) {
      GroundTruthOracle oracle = truth;
      CJ_ASSIGN_OR_RETURN(stats.labeling,
                          session.RunStream(*feed, config.order, oracle,
                                            &truth, &order_rng));
    } else {
      HashNoisyOracle oracle(&truth, config.crowd.false_negative_rate,
                             config.crowd.false_positive_rate,
                             config.crowd.seed);
      CJ_ASSIGN_OR_RETURN(stats.labeling,
                          session.RunStream(*feed, config.order, oracle,
                                            &truth, &order_rng));
    }
    stats.num_candidates = feed->num_candidates();
    return stats;
  }

  CJ_ASSIGN_OR_RETURN(
      stats.candidates,
      GenerateCandidatesStreaming(source, scorer, config.candidates,
                                  config.sharding, &stats.entity_of));
  stats.num_records = static_cast<int64_t>(stats.entity_of.size());
  stats.num_candidates = static_cast<int64_t>(stats.candidates.size());

  const GroundTruthOracle truth(stats.entity_of);
  Rng order_rng(config.crowd.seed);
  CJ_ASSIGN_OR_RETURN(
      const std::vector<int32_t> order,
      MakeLabelingOrder(stats.candidates, config.order, &truth, &order_rng));
  CJ_ASSIGN_OR_RETURN(
      stats.labeling,
      RunLocalParallelLabeling(stats.candidates, order, config.crowd, truth));
  return stats;
}

Result<AmtRunStats> RunNonParallelAmt(const CandidateSet& pairs,
                                      const std::vector<int32_t>& order,
                                      const CrowdConfig& config,
                                      const GroundTruthOracle& truth) {
  // Determine the crowdsourced pair sequence with a synchronous (instant)
  // ground-truth run of the same schedule Parallel(ID) uses, so both
  // publication strategies pay for exactly the same HITs (Section 6.4).
  LabelingSession session = MakeInstantSession();
  std::deque<int32_t> pending;
  std::vector<int32_t> crowdsourced_sequence;
  CJ_ASSIGN_OR_RETURN(const std::vector<int32_t> initial,
                      session.Start(&pairs, order));
  pending.insert(pending.end(), initial.begin(), initial.end());
  while (!pending.empty()) {
    const int32_t pos = pending.front();
    pending.pop_front();
    crowdsourced_sequence.push_back(pos);
    const CandidatePair& pair = pairs[static_cast<size_t>(pos)];
    CJ_ASSIGN_OR_RETURN(
        const std::vector<int32_t> fresh,
        session.OnPairLabeled(pos, truth.Truth(pair.a, pair.b)));
    pending.insert(pending.end(), fresh.begin(), fresh.end());
  }
  CJ_ASSIGN_OR_RETURN(const LabelingReport labeling, session.Finish());

  // Publish those HITs strictly one at a time.
  CrowdPlatform platform(config, &truth);
  std::deque<int32_t> queue(crowdsourced_sequence.begin(),
                            crowdsourced_sequence.end());
  while (!queue.empty()) {
    CJ_ASSIGN_OR_RETURN(
        int64_t hit_id,
        platform.PublishHit(TakeHitTasks(pairs, queue, config.pairs_per_hit)));
    (void)hit_id;
    auto result = platform.RunUntilNextHitCompletion();
    CJ_CHECK(result.has_value());
  }

  AmtRunStats stats;
  FillAmtStats(labeling, platform, stats);
  return stats;
}

}  // namespace crowdjoin
