// Property suite: the ClusterGraph's constant-time deduction must agree
// with the Lemma 1 reference semantics (BFS path search) on arbitrary
// consistent labeled-pair sets — the core correctness claim of Section 3.2.

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "common/rng.h"
#include "graph/cluster_graph.h"
#include "graph/reference_deducer.h"
#include "graph/union_find.h"

namespace crowdjoin {
namespace {

struct RandomLabeledSet {
  int32_t num_objects;
  std::vector<std::tuple<ObjectId, ObjectId, Label>> labeled;
};

// Builds a transitively consistent random labeled set: assign objects to
// ground-truth entities, then label random pairs according to the truth.
RandomLabeledSet MakeConsistentSet(uint64_t seed, int32_t num_objects,
                                   int32_t num_entities, int32_t num_pairs) {
  Rng rng(seed);
  RandomLabeledSet set;
  set.num_objects = num_objects;
  std::vector<int32_t> entity(static_cast<size_t>(num_objects));
  for (auto& e : entity) {
    e = static_cast<int32_t>(rng.Index(static_cast<size_t>(num_entities)));
  }
  for (int32_t i = 0; i < num_pairs; ++i) {
    const auto a =
        static_cast<ObjectId>(rng.Index(static_cast<size_t>(num_objects)));
    const auto b =
        static_cast<ObjectId>(rng.Index(static_cast<size_t>(num_objects)));
    if (a == b) continue;
    const Label label = entity[static_cast<size_t>(a)] ==
                                entity[static_cast<size_t>(b)]
                            ? Label::kMatching
                            : Label::kNonMatching;
    set.labeled.emplace_back(a, b, label);
  }
  return set;
}

class ClusterGraphPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ClusterGraphPropertyTest, AgreesWithReferenceDeducer) {
  const RandomLabeledSet set =
      MakeConsistentSet(GetParam(), /*num_objects=*/40, /*num_entities=*/8,
                        /*num_pairs=*/70);
  ClusterGraph graph(set.num_objects);
  ReferenceDeducer reference(set.num_objects);
  for (const auto& [a, b, label] : set.labeled) {
    graph.Add(a, b, label);
    reference.Add(a, b, label);
  }
  EXPECT_EQ(graph.num_conflicts(), 0);  // consistent input
  for (ObjectId a = 0; a < set.num_objects; ++a) {
    for (ObjectId b = a + 1; b < set.num_objects; ++b) {
      EXPECT_EQ(graph.Deduce(a, b), reference.Deduce(a, b))
          << "seed=" << GetParam() << " pair=(" << a << "," << b << ")";
    }
  }
}

TEST_P(ClusterGraphPropertyTest, IncrementalInsertionOrderIrrelevant) {
  // Any insertion order of the same labeled set deduces identically.
  RandomLabeledSet set =
      MakeConsistentSet(GetParam() ^ 0xabcdef, /*num_objects=*/25,
                        /*num_entities=*/5, /*num_pairs=*/40);
  ClusterGraph forward(set.num_objects);
  for (const auto& [a, b, label] : set.labeled) forward.Add(a, b, label);
  ClusterGraph backward(set.num_objects);
  for (auto it = set.labeled.rbegin(); it != set.labeled.rend(); ++it) {
    backward.Add(std::get<0>(*it), std::get<1>(*it), std::get<2>(*it));
  }
  for (ObjectId a = 0; a < set.num_objects; ++a) {
    for (ObjectId b = a + 1; b < set.num_objects; ++b) {
      EXPECT_EQ(forward.Deduce(a, b), backward.Deduce(a, b))
          << "seed=" << GetParam() << " pair=(" << a << "," << b << ")";
    }
  }
}

TEST_P(ClusterGraphPropertyTest, EdgeCountMatchesDistinctClusterPairs) {
  const RandomLabeledSet set =
      MakeConsistentSet(GetParam() ^ 0x55aa, /*num_objects=*/30,
                        /*num_entities=*/6, /*num_pairs=*/60);
  ClusterGraph graph(set.num_objects);
  UnionFind clusters(set.num_objects);
  for (const auto& [a, b, label] : set.labeled) {
    graph.Add(a, b, label);
    if (label == Label::kMatching) clusters.Union(a, b);
  }
  // Count distinct root pairs connected by non-matching labels.
  std::vector<std::pair<int32_t, int32_t>> edges;
  for (const auto& [a, b, label] : set.labeled) {
    if (label != Label::kNonMatching) continue;
    int32_t ra = clusters.Find(a);
    int32_t rb = clusters.Find(b);
    if (ra > rb) std::swap(ra, rb);
    edges.emplace_back(ra, rb);
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  EXPECT_EQ(graph.num_edges(), static_cast<int64_t>(edges.size()))
      << "seed=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, ClusterGraphPropertyTest,
                         ::testing::Range<uint64_t>(100, 120));

}  // namespace
}  // namespace crowdjoin
