#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

namespace crowdjoin {
namespace {

TEST(Rng, DeterministicPerSeed) {
  Rng a(123);
  Rng b(123);
  Rng c(124);
  bool any_differs = false;
  for (int i = 0; i < 100; ++i) {
    const uint64_t va = a.NextUint64();
    EXPECT_EQ(va, b.NextUint64());
    if (va != c.NextUint64()) any_differs = true;
  }
  EXPECT_TRUE(any_differs);
}

TEST(Rng, UniformUint64RespectsBound) {
  Rng rng(7);
  for (uint64_t bound : {1ull, 2ull, 7ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.UniformUint64(bound), bound);
    }
  }
}

TEST(Rng, UniformIntInclusiveRange) {
  Rng rng(8);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformDoubleInUnitInterval) {
  Rng rng(9);
  double sum = 0.0;
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    const double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / kDraws, 0.5, 0.02);
}

TEST(Rng, BernoulliEdgeCasesAndMean) {
  Rng rng(10);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
  EXPECT_FALSE(rng.Bernoulli(-0.5));
  EXPECT_TRUE(rng.Bernoulli(1.5));
  int hits = 0;
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.3, 0.02);
}

TEST(Rng, NormalMoments) {
  Rng rng(11);
  double sum = 0.0;
  double sum_sq = 0.0;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) {
    const double v = rng.Normal(2.0, 3.0);
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / kDraws;
  const double variance = sum_sq / kDraws - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.1);
  EXPECT_NEAR(std::sqrt(variance), 3.0, 0.1);
}

TEST(Rng, ExponentialMeanAndPositivity) {
  Rng rng(12);
  double sum = 0.0;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) {
    const double v = rng.Exponential(0.5);
    EXPECT_GT(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / kDraws, 0.5, 0.02);
}

TEST(Rng, ShufflePermutes) {
  Rng rng(13);
  std::vector<int> items(50);
  for (int i = 0; i < 50; ++i) items[static_cast<size_t>(i)] = i;
  std::vector<int> shuffled = items;
  rng.Shuffle(shuffled);
  EXPECT_NE(shuffled, items);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, items);
}

TEST(Rng, ShuffleHandlesTinyInputs) {
  Rng rng(14);
  std::vector<int> empty;
  rng.Shuffle(empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one = {42};
  rng.Shuffle(one);
  EXPECT_EQ(one, std::vector<int>{42});
}

TEST(Rng, ZipfStaysInSupportAndFavorsSmallValues) {
  Rng rng(15);
  const ZipfSampler sampler(100, 1.2);
  int64_t ones = 0;
  int64_t large = 0;
  for (int i = 0; i < 10000; ++i) {
    const uint64_t v = sampler.Sample(rng);
    EXPECT_GE(v, 1u);
    EXPECT_LE(v, 100u);
    if (v == 1) ++ones;
    if (v > 50) ++large;
  }
  EXPECT_GT(ones, large);
}

TEST(Rng, ForkProducesIndependentDeterministicStreams) {
  Rng parent1(21);
  Rng parent2(21);
  Rng child1 = parent1.Fork();
  Rng child2 = parent2.Fork();
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(child1.NextUint64(), child2.NextUint64());
  }
}

TEST(Rng, IndexCoversRange) {
  Rng rng(22);
  std::vector<bool> seen(5, false);
  for (int i = 0; i < 500; ++i) seen[rng.Index(5)] = true;
  for (bool s : seen) EXPECT_TRUE(s);
}

}  // namespace
}  // namespace crowdjoin
