#include "core/one_to_one_labeler.h"

#include "common/macros.h"
#include "core/sequential_labeler.h"

namespace crowdjoin {

Result<OneToOneLabeler::RunResult> OneToOneLabeler::Run(
    const CandidateSet& pairs, const std::vector<int32_t>& order,
    LabelOracle& oracle) const {
  CJ_RETURN_IF_ERROR(ValidateOrder(order, pairs.size()));

  RunResult result;
  result.labeling.outcomes.resize(pairs.size());
  const int32_t num_objects = NumObjectsSpanned(pairs);
  ClusterGraph graph(num_objects);
  // matched[o] is true once o has a crowd-confirmed or deduced match.
  std::vector<bool> matched(static_cast<size_t>(num_objects), false);

  for (int32_t pos : order) {
    const CandidatePair& pair = pairs[static_cast<size_t>(pos)];
    PairOutcome& outcome = result.labeling.outcomes[static_cast<size_t>(pos)];

    const Deduction deduction = graph.Deduce(pair.a, pair.b);
    if (deduction != Deduction::kUndeduced) {
      outcome.label = DeductionToLabel(deduction);
      outcome.source = LabelSource::kDeduced;
      ++result.labeling.num_deduced;
      continue;
    }
    // One-to-one rule: if either endpoint is already matched (and the pair
    // is not transitively matching, checked above), it is non-matching.
    if (matched[static_cast<size_t>(pair.a)] ||
        matched[static_cast<size_t>(pair.b)]) {
      outcome.label = Label::kNonMatching;
      outcome.source = LabelSource::kDeduced;
      ++result.labeling.num_deduced;
      ++result.num_one_to_one_deduced;
      // Feed the deduced edge to the graph so transitivity can build on it.
      graph.Add(pair.a, pair.b, Label::kNonMatching);
      continue;
    }

    outcome.label = oracle.GetLabel(pair.a, pair.b);
    outcome.source = LabelSource::kCrowdsourced;
    ++result.labeling.num_crowdsourced;
    result.labeling.crowdsourced_per_iteration.push_back(1);
    graph.Add(pair.a, pair.b, outcome.label);
    if (outcome.label == Label::kMatching) {
      if (matched[static_cast<size_t>(pair.a)] ||
          matched[static_cast<size_t>(pair.b)]) {
        ++result.num_exclusivity_violations;
      }
      matched[static_cast<size_t>(pair.a)] = true;
      matched[static_cast<size_t>(pair.b)] = true;
    }
  }
  return result;
}

}  // namespace crowdjoin
