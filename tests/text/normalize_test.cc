#include "text/normalize.h"

#include <gtest/gtest.h>

namespace crowdjoin {
namespace {

TEST(NormalizeText, LowercasesAndStripsPunctuation) {
  EXPECT_EQ(NormalizeText("iPad-2nd  Gen."), "ipad 2nd gen");
  EXPECT_EQ(NormalizeText("Hello, World!"), "hello world");
}

TEST(NormalizeText, CollapsesWhitespaceRuns) {
  EXPECT_EQ(NormalizeText("a   b\t\nc"), "a b c");
}

TEST(NormalizeText, TrimsEnds) {
  EXPECT_EQ(NormalizeText("  x  "), "x");
  EXPECT_EQ(NormalizeText("...x..."), "x");
}

TEST(NormalizeText, EmptyAndPunctuationOnly) {
  EXPECT_EQ(NormalizeText(""), "");
  EXPECT_EQ(NormalizeText("!!! ??? ..."), "");
}

TEST(NormalizeText, KeepsDigits) {
  EXPECT_EQ(NormalizeText("KX-200b ver.2"), "kx 200b ver 2");
}

TEST(IsTokenChar, AlnumOnly) {
  EXPECT_TRUE(IsTokenChar('a'));
  EXPECT_TRUE(IsTokenChar('Z'));
  EXPECT_TRUE(IsTokenChar('7'));
  EXPECT_FALSE(IsTokenChar(' '));
  EXPECT_FALSE(IsTokenChar('-'));
  EXPECT_FALSE(IsTokenChar('.'));
}

}  // namespace
}  // namespace crowdjoin
