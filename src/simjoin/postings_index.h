#ifndef CROWDJOIN_SIMJOIN_POSTINGS_INDEX_H_
#define CROWDJOIN_SIMJOIN_POSTINGS_INDEX_H_

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "text/set_similarity.h"

namespace crowdjoin {

/// One prefix-index entry: the document holding the token and the token's
/// position within that document's rank-ordered prefix — the position is
/// what powers the PPJoin positional filter.
struct Posting {
  int32_t doc = 0;
  int32_t pos = 0;
};

/// \brief Flat, arena-backed postings table over dense token ranks.
///
/// Token ids (and the rarity ranks derived from them) are dense, so the
/// prefix index needs no hashing: `Build` turns per-token posting counts
/// into a CSR offset table over one flat `Posting` array, and `Append`
/// fills each token's pre-sized slot through a write cursor. Lookups read
/// the *filled* range `[offsets[t], cursors[t])`, which makes the same
/// structure serve both fully built indexes (bipartite left side, shard
/// indexes) and the self-join's incremental index, where documents are
/// appended as the probe sweep passes them.
///
/// Every join path shares this table; the fill order is the caller's
/// contract with itself — both sequential and sharded joins append in
/// ascending document length so `GatherPositionalCandidates` can
/// binary-search the length window instead of length-testing every
/// posting.
class PostingsArena {
 public:
  /// Sizes the arena: `counts[t]` postings will be appended for token t.
  /// Resets all cursors to empty.
  void Build(const std::vector<int32_t>& counts) {
    offsets_.assign(counts.size() + 1, 0);
    for (size_t t = 0; t < counts.size(); ++t) {
      offsets_[t + 1] = offsets_[t] + counts[t];
    }
    cursors_.assign(offsets_.begin(), offsets_.end() - 1);
    postings_.resize(static_cast<size_t>(offsets_.back()));
  }

  /// Appends one posting into `token`'s slot. The caller must not exceed
  /// the count it declared in `Build`.
  void Append(int32_t token, int32_t doc, int32_t pos) {
    postings_[static_cast<size_t>(cursors_[static_cast<size_t>(token)]++)] =
        {doc, pos};
  }

  /// Filled postings of `token`: `[begin, end)`.
  const Posting* begin(int32_t token) const {
    return postings_.data() + offsets_[static_cast<size_t>(token)];
  }
  const Posting* end(int32_t token) const {
    return postings_.data() + cursors_[static_cast<size_t>(token)];
  }

  size_t num_tokens() const { return cursors_.size(); }
  size_t size() const { return postings_.size(); }

 private:
  std::vector<int32_t> offsets_;  ///< token -> slot begin; size tokens + 1
  std::vector<int32_t> cursors_;  ///< token -> filled end within its slot
  std::vector<Posting> postings_;
};

/// Rank-encodes a document: maps token ids through the rarity permutation
/// and sorts ascending. The result is the document in `SortByRarity`
/// order, represented so that plain int32 comparisons *are* the rarity
/// order — prefixes are leading slices and verification merges ranks
/// directly.
inline void RankEncode(const std::vector<int32_t>& doc,
                       const std::vector<int32_t>& ranks,
                       std::vector<int32_t>& out) {
  out.resize(doc.size());
  for (size_t k = 0; k < doc.size(); ++k) {
    out[k] = ranks[static_cast<size_t>(doc[k])];
  }
  std::sort(out.begin(), out.end());
}

/// In-place range variant of `RankEncode` for documents living in flat
/// arena buffers (the sharded join's shards).
inline void RankEncodeRange(int32_t* first, int32_t* last,
                            const std::vector<int32_t>& ranks) {
  for (int32_t* p = first; p != last; ++p) {
    *p = ranks[static_cast<size_t>(*p)];
  }
  std::sort(first, last);
}

/// \brief Builds a fully populated arena over `num_tokens` dense token
/// ranks from `n` documents' prefixes, filling every token's postings in
/// ascending (length, doc id) order — the exact contract
/// `GatherPositionalCandidates`' binary-searched length window depends
/// on, encoded here once for every join path that indexes up front.
///
/// `prefix_of(d)` returns the document's rank-encoded token pointer;
/// `lens[d]` its length; `prefix_lens[d]` how many leading tokens are
/// indexed. (The sequential self-join doesn't use this: it sizes the
/// arena from the same counts but fills incrementally during its
/// ascending-size sweep, which yields the same order.)
template <typename PrefixOf>
inline void BuildLengthOrderedPostings(PostingsArena& index,
                                       size_t num_tokens,
                                       const std::vector<size_t>& lens,
                                       const std::vector<int32_t>& prefix_lens,
                                       PrefixOf prefix_of) {
  const size_t n = lens.size();
  std::vector<int32_t> counts(num_tokens, 0);
  for (size_t d = 0; d < n; ++d) {
    const int32_t* prefix = prefix_of(static_cast<int32_t>(d));
    const auto prefix_len = static_cast<size_t>(prefix_lens[d]);
    for (size_t p = 0; p < prefix_len; ++p) ++counts[prefix[p]];
  }
  std::vector<int32_t> by_size(n);
  for (size_t d = 0; d < n; ++d) by_size[d] = static_cast<int32_t>(d);
  std::sort(by_size.begin(), by_size.end(),
            [&lens](int32_t x, int32_t y) {
              const size_t lx = lens[static_cast<size_t>(x)];
              const size_t ly = lens[static_cast<size_t>(y)];
              if (lx != ly) return lx < ly;
              return x < y;
            });
  index.Build(counts);
  for (const int32_t d : by_size) {
    const int32_t* prefix = prefix_of(d);
    const auto prefix_len =
        static_cast<size_t>(prefix_lens[static_cast<size_t>(d)]);
    for (size_t p = 0; p < prefix_len; ++p) {
      index.Append(prefix[p], d, static_cast<int32_t>(p));
    }
  }
}

/// A candidate that survived the length window and the positional filter,
/// plus the seed for resumed verification: the first shared prefix token
/// sits at `probe_pos` in the probe document and `index_pos` in the
/// candidate — verification restarts just past it with one overlap
/// banked instead of re-merging the matched prefixes.
struct JoinCandidate {
  int32_t doc = 0;
  int32_t probe_pos = 0;
  int32_t index_pos = 0;
};

/// \brief The candidate-gather loop shared by every join path: probe one
/// document's prefix against a postings arena, deduplicate via
/// `last_seen`, window by length, and prune with the PPJoin positional
/// filter.
///
/// `len_of(doc)` returns a candidate document's size; `skip(doc)` is an
/// extra reject (the sharded self-join's same-shard ordering rule) that
/// still marks `last_seen`. `probe_mark` must be unique per probe
/// document against a given `last_seen` array (initialized to -1).
///
/// Length window: postings lists must be sorted ascending by
/// `len_of(doc)`; the `[min_len, max_len]` window is then located by
/// binary search, with O(1) endpoint pre-checks so fully qualifying lists
/// (the common case) skip the searches. Pass a huge `max_len` when only
/// the lower bound applies (the sequential self-join indexes only
/// shorter-or-equal documents).
///
/// Positional filter: `last_seen` dedupe means a candidate is visited at
/// the *first* shared prefix token, where no smaller-rank token is
/// common (a smaller common token would sit inside both prefixes and
/// would have matched earlier). The total overlap is therefore at most
/// this token plus everything after it on both sides; candidates whose
/// bound cannot reach `RequiredOverlap` are dropped before verification
/// ever touches them — exactly the pairs `BoundedJaccard` would have
/// rejected, so join output is unchanged.
template <typename LenOf, typename Skip>
inline void GatherPositionalCandidates(
    const PostingsArena& index, const int32_t* probe_prefix,
    size_t prefix_len, size_t probe_len, double threshold, size_t min_len,
    size_t max_len, int32_t probe_mark, std::vector<int32_t>& last_seen,
    LenOf len_of, Skip skip, std::vector<JoinCandidate>& out) {
  // Within one probe the required overlap depends only on the candidate
  // length, and postings arrive in ascending-length runs — memoize the
  // last (len -> required) pair instead of paying the fp divide + ceil
  // per posting. Same function, same arguments: bit-identical results.
  size_t memo_len = std::numeric_limits<size_t>::max();
  size_t memo_required = 0;
  for (size_t p = 0; p < prefix_len; ++p) {
    const int32_t token = probe_prefix[p];
    const Posting* begin = index.begin(token);
    const Posting* end = index.end(token);
    if (begin == end) continue;
    if (len_of(begin->doc) < min_len) {
      begin = std::partition_point(begin, end, [&](const Posting& e) {
        return len_of(e.doc) < min_len;
      });
    }
    if (begin != end && len_of((end - 1)->doc) > max_len) {
      end = std::partition_point(begin, end, [&](const Posting& e) {
        return len_of(e.doc) <= max_len;
      });
    }
    for (const Posting* it = begin; it != end; ++it) {
      const int32_t doc = it->doc;
      if (last_seen[static_cast<size_t>(doc)] == probe_mark) continue;
      last_seen[static_cast<size_t>(doc)] = probe_mark;
      if (skip(doc)) continue;
      const size_t len = len_of(doc);
      if (len != memo_len) {
        memo_len = len;
        memo_required = RequiredOverlap(threshold, probe_len, len);
      }
      const size_t upper_bound =
          1 + std::min(probe_len - p - 1,
                       len - static_cast<size_t>(it->pos) - 1);
      if (upper_bound < memo_required) continue;
      out.push_back({doc, static_cast<int32_t>(p), it->pos});
    }
  }
}

}  // namespace crowdjoin

#endif  // CROWDJOIN_SIMJOIN_POSTINGS_INDEX_H_
