#include "common/rng.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"

namespace crowdjoin {

namespace {

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
  // A theoretically-possible all-zero state would make the stream constant.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::UniformUint64(uint64_t bound) {
  CJ_CHECK(bound > 0);
  // Lemire's nearly-divisionless method.
  uint64_t x = NextUint64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    uint64_t t = (0 - bound) % bound;
    while (l < t) {
      x = NextUint64();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  CJ_CHECK(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1;
  if (span == 0) return static_cast<int64_t>(NextUint64());  // full range
  return lo + static_cast<int64_t>(UniformUint64(span));
}

double Rng::UniformDouble() {
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

double Rng::Normal() {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return spare_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = UniformDouble();
  } while (u1 <= 0.0);
  const double u2 = UniformDouble();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  const double two_pi = 6.283185307179586476925286766559;
  spare_normal_ = mag * std::sin(two_pi * u2);
  has_spare_normal_ = true;
  return mag * std::cos(two_pi * u2);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

double Rng::Exponential(double mean) {
  CJ_CHECK(mean > 0.0);
  double u = 0.0;
  do {
    u = UniformDouble();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

double Rng::LogNormal(double mu, double sigma) {
  return std::exp(Normal(mu, sigma));
}

uint64_t Rng::Zipf(uint64_t n, double s) {
  ZipfSampler sampler(n, s);
  return sampler.Sample(*this);
}

size_t Rng::Index(size_t size) {
  return static_cast<size_t>(UniformUint64(static_cast<uint64_t>(size)));
}

Rng Rng::Fork() { return Rng(NextUint64()); }

Rng::State Rng::SaveState() const {
  State state;
  for (int i = 0; i < 4; ++i) state.s[i] = s_[i];
  state.spare_normal = spare_normal_;
  state.has_spare_normal = has_spare_normal_;
  return state;
}

void Rng::RestoreState(const State& state) {
  for (int i = 0; i < 4; ++i) s_[i] = state.s[i];
  spare_normal_ = state.spare_normal;
  has_spare_normal_ = state.has_spare_normal;
}

ZipfSampler::ZipfSampler(uint64_t n, double s) {
  CJ_CHECK(n >= 1);
  cdf_.resize(n);
  double acc = 0.0;
  for (uint64_t k = 1; k <= n; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k), s);
    cdf_[k - 1] = acc;
  }
  for (auto& c : cdf_) c /= acc;
  cdf_.back() = 1.0;  // guard against floating-point shortfall
}

uint64_t ZipfSampler::Sample(Rng& rng) const {
  const double u = rng.UniformDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<uint64_t>(it - cdf_.begin()) + 1;
}

}  // namespace crowdjoin
