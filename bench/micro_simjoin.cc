// Microbenchmark + ablation: prefix-filter similarity join vs brute-force
// all-pairs verification — the machine step's cost profile across
// thresholds (higher thresholds prune better).

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "common/string_util.h"
#include "simjoin/similarity_join.h"
#include "simjoin/token_dictionary.h"

namespace crowdjoin {
namespace {

struct Corpus {
  TokenDictionary dictionary;
  std::vector<std::vector<int32_t>> docs;
};

Corpus MakeCorpus(size_t num_docs, size_t tokens_per_doc, size_t vocabulary) {
  Corpus corpus;
  Rng rng(7);
  const ZipfSampler sampler(vocabulary, 1.1);
  for (size_t d = 0; d < num_docs; ++d) {
    std::vector<std::string> tokens;
    for (size_t t = 0; t < tokens_per_doc; ++t) {
      tokens.push_back(StrFormat("tok%llu",
                                 static_cast<unsigned long long>(
                                     sampler.Sample(rng))));
    }
    corpus.docs.push_back(corpus.dictionary.AddDocument(tokens));
  }
  return corpus;
}

void BM_PrefixFilterSelfJoin(benchmark::State& state) {
  const auto num_docs = static_cast<size_t>(state.range(0));
  const double threshold = static_cast<double>(state.range(1)) / 10.0;
  Corpus corpus = MakeCorpus(num_docs, 12, 4096);
  for (auto _ : state) {
    auto result =
        PrefixFilterSelfJoin(corpus.docs, corpus.dictionary, threshold);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(num_docs));
}
BENCHMARK(BM_PrefixFilterSelfJoin)
    ->Args({1000, 3})
    ->Args({1000, 5})
    ->Args({1000, 8})
    ->Args({4000, 5})
    ->Args({4000, 8});

void BM_BruteForceSelfJoin(benchmark::State& state) {
  const auto num_docs = static_cast<size_t>(state.range(0));
  const double threshold = static_cast<double>(state.range(1)) / 10.0;
  Corpus corpus = MakeCorpus(num_docs, 12, 4096);
  for (auto _ : state) {
    auto result = BruteForceSelfJoin(corpus.docs, threshold);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(num_docs));
}
BENCHMARK(BM_BruteForceSelfJoin)->Args({1000, 5})->Args({1000, 8});

}  // namespace
}  // namespace crowdjoin

BENCHMARK_MAIN();
