#include "core/one_to_one_labeler.h"

#include <memory>

#include "common/macros.h"
#include "core/labeling_session.h"

namespace crowdjoin {

Result<OneToOneLabeler::RunResult> OneToOneLabeler::Run(
    const CandidateSet& pairs, const std::vector<int32_t>& order,
    LabelOracle& oracle) const {
  LabelingSession session;  // sequential, unbounded
  session.AddRule(std::make_unique<TransitiveDeductionRule>())
      .AddRule(std::make_unique<OneToOneDeductionRule>());
  CJ_ASSIGN_OR_RETURN(const LabelingReport report,
                      session.Run(pairs, order, oracle));
  RunResult result;
  result.labeling = report.ToLabelingResult();
  // The legacy labeler never surfaced graph conflicts (none are reachable
  // through this flow: only transitively-undeduced pairs are ever added).
  result.labeling.num_conflicts = 0;
  result.num_one_to_one_deduced = report.num_one_to_one_deduced;
  result.num_exclusivity_violations = report.num_exclusivity_violations;
  return result;
}

}  // namespace crowdjoin
