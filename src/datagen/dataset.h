#ifndef CROWDJOIN_DATAGEN_DATASET_H_
#define CROWDJOIN_DATAGEN_DATASET_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/oracle.h"
#include "text/record.h"

namespace crowdjoin {

/// \brief A generated entity-resolution dataset: records plus ground truth.
///
/// Records carry dense ids `[0, records.size())`. `entity_of[i]` is the
/// true entity of record i; two records match iff their entities coincide.
/// Bipartite datasets (the Product setting) additionally assign each record
/// to side 0 or 1, and only cross-side pairs are join candidates.
struct Dataset {
  std::string name;
  Schema schema;
  RecordSet records;
  std::vector<int32_t> entity_of;
  bool bipartite = false;
  std::vector<uint8_t> side_of;  ///< empty unless bipartite

  /// Number of records on the given side (bipartite only).
  int64_t SideCount(uint8_t side) const {
    int64_t count = 0;
    for (uint8_t s : side_of) count += (s == side) ? 1 : 0;
    return count;
  }
};

/// Cluster size -> number of ground-truth clusters of that size
/// (the Figure 10 distribution).
std::map<int32_t, int64_t> ClusterSizeHistogram(const Dataset& dataset);

/// Number of truly matching candidate-eligible pairs: C(k,2) per cluster
/// for self-join datasets; cross-side pairs only for bipartite ones.
int64_t NumTrueMatchingPairs(const Dataset& dataset);

/// Total candidate-eligible pairs: C(n,2) (self-join) or |A|*|B| (bipartite).
int64_t NumEligiblePairs(const Dataset& dataset);

/// Builds the always-correct oracle for this dataset's ground truth.
GroundTruthOracle MakeGroundTruthOracle(const Dataset& dataset);

}  // namespace crowdjoin

#endif  // CROWDJOIN_DATAGEN_DATASET_H_
