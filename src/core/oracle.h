#ifndef CROWDJOIN_CORE_ORACLE_H_
#define CROWDJOIN_CORE_ORACLE_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "graph/label.h"

namespace crowdjoin {

/// \brief Source of pair labels, abstracting "ask the crowd" in simulation.
///
/// The labelers call this once per crowdsourced pair. Implementations:
/// ground truth (the paper's correct-answer assumption, Section 2.1) and a
/// noisy wrapper used for the quality experiments (Table 2).
///
/// The parallel labeler may issue the calls of one batch from several
/// worker threads at once, so query counting is atomic here in the base.
/// An implementation is *batch-safe* when concurrent `GetLabel` calls are
/// data-race free and each answer depends only on the pair, never on the
/// order of other calls — the precondition for the parallel labeler's
/// thread-count-independence guarantee. `GroundTruthOracle` and
/// `HashNoisyOracle` are batch-safe; `NoisyOracle` (sequential RNG stream)
/// is not and must be used with a single labeling thread.
class LabelOracle {
 public:
  LabelOracle() = default;
  virtual ~LabelOracle() = default;

  // std::atomic is neither copyable nor movable; oracles are value types
  // throughout the tests and benches, so copy the counter's value.
  LabelOracle(const LabelOracle& other)
      : num_queries_(other.num_queries_.load(std::memory_order_relaxed)) {}
  LabelOracle& operator=(const LabelOracle& other) {
    num_queries_.store(other.num_queries_.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
    return *this;
  }

  /// The label the crowd returns for pair (a, b).
  virtual Label GetLabel(ObjectId a, ObjectId b) = 0;

  /// Whether concurrent `GetLabel` calls are safe and order-independent
  /// (see the class comment). Sessions running a multi-threaded schedule
  /// check this and fail fast with `InvalidArgument` rather than silently
  /// racing a sequential-stream oracle.
  virtual bool IsBatchSafe() const { return true; }

  /// Number of labels served so far (i.e. crowdsourced pairs billed).
  int64_t num_queries() const {
    return num_queries_.load(std::memory_order_relaxed);
  }

 protected:
  std::atomic<int64_t> num_queries_ = 0;
};

/// \brief Always-correct oracle backed by an entity assignment: objects
/// match iff they map to the same entity id.
class GroundTruthOracle : public LabelOracle {
 public:
  /// `entity_of[o]` is the ground-truth entity of object `o`.
  explicit GroundTruthOracle(std::vector<int32_t> entity_of)
      : entity_of_(std::move(entity_of)) {}

  Label GetLabel(ObjectId a, ObjectId b) override {
    ++num_queries_;
    return Truth(a, b);
  }

  /// The true label, without counting a query (for evaluation).
  Label Truth(ObjectId a, ObjectId b) const {
    return entity_of_[static_cast<size_t>(a)] ==
                   entity_of_[static_cast<size_t>(b)]
               ? Label::kMatching
               : Label::kNonMatching;
  }

  /// The backing entity assignment.
  const std::vector<int32_t>& entity_of() const { return entity_of_; }

 private:
  std::vector<int32_t> entity_of_;
};

/// \brief Oracle that flips the true label with class-dependent error
/// rates, modelling an (un-aggregated) crowd worker's answer.
///
/// `false_negative_rate` is the probability a truly matching pair is
/// answered "non-matching"; `false_positive_rate` the reverse. Aggregation
/// (majority voting across assignments) lives in the crowd module.
///
/// Not batch-safe: each answer advances the shared RNG stream, so it
/// depends on global call order. Use `HashNoisyOracle` when the labeling
/// runs on more than one thread.
class NoisyOracle : public LabelOracle {
 public:
  NoisyOracle(const GroundTruthOracle* truth, double false_negative_rate,
              double false_positive_rate, Rng rng)
      : truth_(truth),
        false_negative_rate_(false_negative_rate),
        false_positive_rate_(false_positive_rate),
        rng_(rng) {}

  Label GetLabel(ObjectId a, ObjectId b) override {
    ++num_queries_;
    const Label real = truth_->Truth(a, b);
    if (real == Label::kMatching) {
      return rng_.Bernoulli(false_negative_rate_) ? Label::kNonMatching
                                                  : Label::kMatching;
    }
    return rng_.Bernoulli(false_positive_rate_) ? Label::kMatching
                                                : Label::kNonMatching;
  }

  /// Each answer advances the shared RNG stream: order-dependent, racy.
  bool IsBatchSafe() const override { return false; }

 private:
  const GroundTruthOracle* truth_;
  double false_negative_rate_;
  double false_positive_rate_;
  Rng rng_;
};

/// \brief Noisy oracle whose error coin for pair (a, b) is a pure function
/// of (seed, a, b) — a counter-based RNG rather than a sequential stream.
///
/// Answers are therefore identical no matter how calls interleave across
/// threads or repeat across runs, which makes this the noisy oracle of
/// choice for the parallel labeler's determinism contract (and its tests).
/// Error semantics match `NoisyOracle`: a truly matching pair flips to
/// non-matching with `false_negative_rate`, and vice versa.
class HashNoisyOracle : public LabelOracle {
 public:
  HashNoisyOracle(const GroundTruthOracle* truth, double false_negative_rate,
                  double false_positive_rate, uint64_t seed)
      : truth_(truth),
        false_negative_rate_(false_negative_rate),
        false_positive_rate_(false_positive_rate),
        seed_(seed) {}

  Label GetLabel(ObjectId a, ObjectId b) override {
    ++num_queries_;
    const Label real = truth_->Truth(a, b);
    const double flip = real == Label::kMatching ? false_negative_rate_
                                                 : false_positive_rate_;
    if (PairUniform(a, b) < flip) {
      return real == Label::kMatching ? Label::kNonMatching
                                      : Label::kMatching;
    }
    return real;
  }

 private:
  // Uniform double in [0, 1) derived from a SplitMix64 hash of (seed, a,
  // b), using the 53 high bits as the mantissa. The pair is normalized to
  // (min, max) first so (a, b) and (b, a) draw the same coin — "pure
  // function of the pair" means the unordered pair.
  double PairUniform(ObjectId a, ObjectId b) const {
    const ObjectId lo = a < b ? a : b;
    const ObjectId hi = a < b ? b : a;
    uint64_t state = seed_;
    uint64_t h = SplitMix64(state);
    state = h ^ static_cast<uint64_t>(static_cast<uint32_t>(lo));
    h = SplitMix64(state);
    state = h ^ static_cast<uint64_t>(static_cast<uint32_t>(hi));
    h = SplitMix64(state);
    return static_cast<double>(h >> 11) * 0x1.0p-53;
  }

  const GroundTruthOracle* truth_;
  double false_negative_rate_;
  double false_positive_rate_;
  uint64_t seed_;
};

}  // namespace crowdjoin

#endif  // CROWDJOIN_CORE_ORACLE_H_
